"""The per-process DAOS client API.

Every benchmark or application process owns a :class:`DaosClient` bound to
its client socket address.  All operations are *generators* meant to be
driven with ``yield from`` inside a simulation process; they charge provider
RPC latency, per-target service time, object serialisation, and bulk data
flows, then apply the functional state change and return the result.

Since the RPC-pipeline refactor, every operation is materialised as a
:class:`~repro.daos.rpc.Request` (op kind, target, payload size, re-invocable
body) and submitted through the client's middleware chain — metrics and
tracing always, fault injection and retry when
:class:`~repro.config.FaultInjectionConfig` enables them.  ``request_*``
builders expose the Request objects directly so callers can submit them
asynchronously through an :class:`~repro.daos.eq.EventQueue`
(``client.eq_create()``), the ``daos_eq_*`` idiom the pipelined Field I/O
path uses.  The default middleware chain adds no simulated events, keeping
the blocking path bit-identical to the pre-pipeline client.

Connection/handle caching follows the paper (§5.2: "Pool and container
connections in a process are cached"): repeated ``container_open`` calls for
the same container are free after the first.
"""

from __future__ import annotations

import hashlib
import os
import uuid as uuid_module
from typing import Dict, List, Optional, Tuple, Union

from repro.daos.array_object import ArrayObject
from repro.daos.container import Container
from repro.daos.eq import EventQueue
from repro.daos.errors import (
    InvalidArgumentError,
    KeyNotFoundError,
    TargetDownError,
)
from repro.daos.kv import KeyValueObject
from repro.daos.objclass import OC_S1, ObjectClass
from repro.daos.oid import ObjectId
from repro.daos.payload import BytesPayload, Payload
from repro.daos.placement import shard_layout
from repro.daos.pool import Pool
from repro.daos.rpc import (
    FaultInjectionMiddleware,
    MetricsMiddleware,
    Middleware,
    OpStats,
    PoolMapRefreshMiddleware,
    Request,
    RetryMiddleware,
    TracingMiddleware,
    compose_chain,
)
from repro.daos.system import DaosSystem
from repro.network.fabric import NodeSocket
from repro.simulation.events import PENDING, Event

__all__ = ["DaosClient", "default_middleware"]

ContainerRef = Union[uuid_module.UUID, str]

#: dkey -> hash-prefix cache shared by all clients.  Benchmarks hammer a
#: small keyset with puts then gets (often thousands of ops per key), and
#: the sha256 is by far the dominant cost of placement; the raw 32-bit
#: prefix is cached (not the target index) so it stays valid across objects
#: with different layouts.
_DKEY_HASH_CACHE: Dict[bytes, int] = {}


def default_middleware(config) -> List[Middleware]:
    """The standard chain for a :class:`DaosServiceConfig`, outermost first.

    Metrics wraps everything (an op counts once, its latency covers
    retries); retry wraps tracing (each attempt gets its own span); fault
    injection sits innermost, directly in front of the op body.
    """
    chain: List[Middleware] = [MetricsMiddleware()]
    fault = config.fault_injection
    if config.health.enabled:
        # Health-aware retry: a TargetDownError means the client's cached
        # pool map is (possibly) stale — refetch it and re-route the op.
        # Sits inside metrics (the refresh round trips count toward the
        # op's observed latency) and outside plain retry/fault injection.
        chain.append(PoolMapRefreshMiddleware())
    if fault.enabled and config.retry.max_attempts > 1:
        chain.append(RetryMiddleware(config.retry))
    chain.append(TracingMiddleware())
    if fault.enabled:
        chain.append(FaultInjectionMiddleware(fault))
    return chain


class _FastDriver(Event):
    """Flat driver for one metadata op on the fast path.

    The driver *is* the event the calling process waits on: the public op
    method returns ``(yield driver)``, so the whole op costs the caller one
    suspension instead of one per simulated wait.  The op body is a special
    *fast body* generator that may yield

    * a ``float``/``int`` — a fused delay: the driver re-arms its recycled
      lane event (``Simulator.lane_acquire``) for that delay, replacing a
      fresh ``Timeout`` allocation per wait;
    * an :class:`~repro.simulation.events.Event` — e.g. a contended lock or
      resource grant, or a bulk transfer: the driver waits on it exactly
      like ``Process._step`` would.

    When the body returns, the driver records the op's metrics epilogue
    (the exact :class:`~repro.daos.rpc.MetricsMiddleware` accounting) and
    finishes *synchronously* inside the final event's callback slot — no
    completion event travels through the queue, so the caller resumes at
    the same ``(time, seq)`` boundary the generic ``yield from`` chain
    resumes at.  Failures mirror the generic path too: the epilogue
    observes ``ok=False`` and the exception is thrown into the caller at
    its yield (or re-raised synchronously from ``_fast_submit`` when the
    body fails before its first wait).

    Drivers and their lane events are pooled (per client / per simulator),
    so a storm of metadata ops allocates O(concurrent ops) objects rather
    than several events, closures and middleware frames per op.
    """

    __slots__ = ("_client", "_body", "_lane", "_cbs", "_entry", "_nbytes", "_start")

    def __init__(self, client: "DaosClient") -> None:
        self.sim = client.sim
        self.name = "fastop"
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._client = client
        #: Persistent one-element callback list installed on the lane event
        #: each time it is re-armed (the dispatcher nulls ``event.callbacks``
        #: but never mutates the list itself).
        self._cbs = [self._advance]
        self._body = None
        self._lane = None
        self._entry = None
        self._nbytes = 0
        self._start = 0.0

    def _advance(self, event: Event) -> None:
        """Resume the body with ``event``'s outcome (Process._resume's job)."""
        if event._ok:
            self._drive(event._value, False)
        else:
            event.defuse()
            self._drive(event._value, True)

    def _drive(self, payload, as_exception: bool) -> None:
        """Advance the body until it suspends on a wait or finishes."""
        body = self._body
        sim = self.sim
        while True:
            try:
                if as_exception:
                    target = body.throw(payload)
                else:
                    target = body.send(payload)
            except StopIteration as stop:
                self._finish(stop.value, None)
                return
            except BaseException as exc:
                self._finish(None, exc)
                return

            cls = type(target)
            if cls is float or cls is int:
                # Fused delay: re-arm the recycled lane event.
                lane = self._lane
                lane._value = PENDING
                lane.callbacks = self._cbs
                sim._schedule(target, lane)
                return
            # An Event (contended grant, bulk transfer, ...): wait like a
            # process would — or continue inline if it is already processed.
            callbacks = target.callbacks
            if callbacks is None:
                if target._ok:
                    payload = target._value
                    as_exception = False
                else:
                    target.defuse()
                    payload = target._value
                    as_exception = True
                continue
            callbacks.append(self._advance)
            return

    def _finish(self, value, error: Optional[BaseException]) -> None:
        """Metrics epilogue + synchronous completion (no queue round trip)."""
        sim = self.sim
        self._entry.observe(sim._now - self._start, self._nbytes, ok=error is None)
        if error is None:
            self._ok = True
            self._value = value
        else:
            self._ok = False
            self._value = error
        callbacks = self.callbacks
        self.callbacks = None
        for callback in callbacks:
            callback(self)
        # Recycle only after the caller resumed: a nested fast op started
        # inside the callback must not grab this driver mid-finish.
        client = self._client
        sim.lane_release(self._lane)
        self._lane = None
        self._body = None
        self._entry = None
        client._driver_pool.append(self)
        if error is not None and not callbacks and not self._defused:
            # Nobody was waiting: surface the failure like the dispatcher
            # does for an unhandled failed event.  ``_fast_submit`` relies
            # on this for exceptions raised before the body's first wait.
            raise error


class DaosClient:
    """A DAOS client bound to one simulated process.

    Parameters
    ----------
    system:
        The deployment to talk to.
    address:
        The client node/socket this process is pinned to; determines which
        fabric links its traffic traverses.
    middleware:
        Override the RPC middleware chain (outermost first).  Defaults to
        :func:`default_middleware` over the system's service config.
    """

    def __init__(
        self,
        system: DaosSystem,
        address: NodeSocket,
        middleware: Optional[List[Middleware]] = None,
    ) -> None:
        self.system = system
        self.address = address
        self.sim = system.cluster.sim
        self.net = system.cluster.net
        self.fabric = system.cluster.fabric
        self.provider = system.cluster.provider
        #: Hoisted out of :meth:`_latency` (two RPCs' worth per op).
        self._message_latency = self.provider.message_latency
        self.config = system.config
        self._container_cache: Dict[Tuple[str, str], Container] = {}
        #: Op counters, useful to assert on op mixes in tests.
        self.stats: Dict[str, int] = {}
        #: Per-op latency/bytes accumulators (maintained by metrics middleware).
        self.op_metrics: Dict[str, OpStats] = {}
        #: Total faults injected into this client (fault middleware).
        self.faults_injected = 0
        #: Pool-map refetches performed after TargetDownError rejections.
        self.map_refreshes = 0
        #: Cheap flag guarding every health check — False keeps the default
        #: path bit-identical to a health-free build.
        self._health = self.config.health.enabled
        #: The client's cached pool-map view (possibly stale; refreshed via
        #: the PoolMapRefreshMiddleware when a target rejects an op).
        self._map_view = system.pool_map.snapshot()
        if middleware is None:
            middleware = default_middleware(self.config)
        self.middleware = middleware
        self._chain = compose_chain(middleware)
        #: Metadata fast path engages only when the chain is plain (exactly
        #: metrics + tracing — no fault/retry/QoS/pool-map middleware to
        #: honour) and health is off (no degraded routing / authoritative
        #: target checks).  ``REPRO_RPC_FAST=0`` is the escape hatch; per
        #: call the tracer must also be absent (mid-run installation falls
        #: back to the generic chain).
        self._fast_ok = (
            os.environ.get("REPRO_RPC_FAST", "") != "0"
            and not self._health
            and len(middleware) == 2
            and type(middleware[0]) is MetricsMiddleware
            and type(middleware[1]) is TracingMiddleware
        )
        #: Recycled fast-op drivers (see :class:`_FastDriver`).
        self._driver_pool: List[_FastDriver] = []

    # -- RPC submission ----------------------------------------------------------
    def _submit(self, request: Request):
        """Drive ``request`` through the middleware chain (blocking caller)."""
        result = yield from self._chain(self, request)
        return result

    # -- metadata fast path -------------------------------------------------------
    def _fast_submit(self, op: str, body, nbytes: int) -> _FastDriver:
        """Launch ``body`` on a pooled :class:`_FastDriver`.

        Runs the exact :class:`~repro.daos.rpc.MetricsMiddleware` prologue,
        then drives the body's first step synchronously — an exception
        raised before the first wait propagates out of this call, just as
        it would through the generic ``yield from`` chain.  The returned
        driver is the event the public op method yields once.
        """
        stats = self.stats
        stats[op] = stats.get(op, 0) + 1
        entry = self.op_metrics.get(op)
        if entry is None:
            self.op_metrics[op] = entry = OpStats()
        pool = self._driver_pool
        driver = pool.pop() if pool else _FastDriver(self)
        driver.callbacks = []
        driver._value = PENDING
        driver._ok = True
        driver._defused = False
        driver._body = body
        driver._lane = self.sim.lane_acquire()
        driver._entry = entry
        driver._nbytes = nbytes
        driver._start = self.sim._now
        driver._drive(None, False)
        return driver

    def _service_slow(self, service, service_time: float):
        """Contended-grant fallback of the fast bodies' service elision.

        A fast-body sub-generator: the grant travels as a real event (so
        FIFO ordering against every queued waiter is untouched) and the
        service window as a fused lane delay.
        """
        request = service.request()
        yield request
        try:
            yield service_time
        finally:
            service.release(request)

    def _fast_kv_put(self, kv: KeyValueObject, key: bytes, value: bytes):
        """Fused-delay body of :meth:`kv_put` (timeline of ``_do_kv_put``)."""
        sim = self.sim
        bulk = self._kv_bulk_size(value)
        yield self._message_latency
        lock = kv.lock
        if not (sim.peek() > sim._now and lock.try_acquire_write()):
            yield lock.acquire_write()
        try:
            service_time = self.config.kv_put_service_time
            for target in self._kv_write_targets(kv, key):
                service = self.system.target(target).service
                if sim.peek() > sim._now and service.try_acquire():
                    try:
                        yield service_time
                    finally:
                        service.release_direct()
                else:
                    yield from self._service_slow(service, service_time)
                if bulk:
                    yield from self._kv_bulk(target, bulk, write=True)
            kv.put(key, value)
        finally:
            lock.release_write()
        yield self._message_latency

    def _fast_kv_get(self, kv: KeyValueObject, key: bytes):
        """Fused-delay body of :meth:`kv_get_or_none`."""
        sim = self.sim
        yield self._message_latency
        lock = kv.lock
        if not (sim.peek() > sim._now and lock.try_acquire_write()):
            yield lock.acquire_write()
        try:
            service = self.system.target(self._key_target(kv, key)).service
            service_time = self.config.kv_get_service_time
            if sim.peek() > sim._now and service.try_acquire():
                try:
                    yield service_time
                finally:
                    service.release_direct()
            else:
                yield from self._service_slow(service, service_time)
            value = kv.get_or_none(key)
        finally:
            lock.release_write()
        bulk = self._kv_bulk_size(value)
        if bulk:
            yield from self._kv_bulk(self._key_target(kv, key), bulk, write=False)
        yield self._message_latency
        return value

    def _fast_kv_remove(self, kv: KeyValueObject, key: bytes):
        """Fused-delay body of :meth:`kv_remove`."""
        sim = self.sim
        yield self._message_latency
        lock = kv.lock
        if not (sim.peek() > sim._now and lock.try_acquire_write()):
            yield lock.acquire_write()
        try:
            service_time = self.config.kv_put_service_time
            for target in self._kv_write_targets(kv, key):
                service = self.system.target(target).service
                if sim.peek() > sim._now and service.try_acquire():
                    try:
                        yield service_time
                    finally:
                        service.release_direct()
                else:
                    yield from self._service_slow(service, service_time)
            kv.remove(key)
        finally:
            lock.release_write()
        yield self._message_latency

    def _fast_kv_open(self, kv: KeyValueObject):
        """Fused-delay body of :meth:`kv_open`."""
        sim = self.sim
        yield self._message_latency
        service = self.system.target(self._lead_target(kv)).service
        service_time = self.config.rpc_service_time
        if sim.peek() > sim._now and service.try_acquire():
            try:
                yield service_time
            finally:
                service.release_direct()
        else:
            yield from self._service_slow(service, service_time)
        yield self._message_latency
        return kv

    def _fast_container_exists(self, pool: Pool, ref: ContainerRef):
        """Fused-delay body of :meth:`container_exists`."""
        sim = self.sim
        yield self._message_latency
        service = self.system.pool_service
        service_time = self.config.rpc_service_time
        if sim.peek() > sim._now and service.try_acquire():
            try:
                yield service_time
            finally:
                service.release_direct()
        else:
            yield from self._service_slow(service, service_time)
        yield self._message_latency
        return pool.has_container(ref)

    def _fast_container_touch(self, container: Container):
        """Fused-delay counterpart of :meth:`_container_touch`."""
        if container.is_default:
            return
        sim = self.sim
        service = self.system.pool_service
        service_time = self.config.container_touch_service_time
        if sim.peek() > sim._now and service.try_acquire():
            try:
                yield service_time
            finally:
                service.release_direct()
        else:
            yield from self._service_slow(service, service_time)

    def _fast_array_create(self, container: Container, array: ArrayObject):
        """Fused-delay body of :meth:`array_create`."""
        sim = self.sim
        yield self._message_latency
        yield from self._fast_container_touch(container)
        service = self.system.target(self._lead_target(array)).service
        service_time = self.config.array_create_service_time
        if sim.peek() > sim._now and service.try_acquire():
            try:
                yield service_time
            finally:
                service.release_direct()
        else:
            yield from self._service_slow(service, service_time)
        yield self._message_latency
        return array

    def _fast_array_open(self, container: Container, array: ArrayObject):
        """Fused-delay body of :meth:`array_open`."""
        sim = self.sim
        yield self._message_latency
        yield from self._fast_container_touch(container)
        service = self.system.target(self._lead_target(array)).service
        service_time = self.config.array_open_service_time
        if sim.peek() > sim._now and service.try_acquire():
            try:
                yield service_time
            finally:
                service.release_direct()
        else:
            yield from self._service_slow(service, service_time)
        yield self._message_latency
        return array

    def _fast_array_close(self, array: ArrayObject):
        """Fused-delay body of :meth:`array_close` (no leading latency)."""
        sim = self.sim
        service = self.system.target(self._lead_target(array)).service
        service_time = self.config.array_close_service_time
        if sim.peek() > sim._now and service.try_acquire():
            try:
                yield service_time
            finally:
                service.release_direct()
        else:
            yield from self._service_slow(service, service_time)
        yield self._message_latency

    def _fast_array_get_size(self, array: ArrayObject):
        """Fused-delay body of :meth:`array_get_size`."""
        sim = self.sim
        yield self._message_latency
        service = self.system.target(self._lead_target(array)).service
        service_time = self.config.rpc_service_time
        if sim.peek() > sim._now and service.try_acquire():
            try:
                yield service_time
            finally:
                service.release_direct()
        else:
            yield from self._service_slow(service, service_time)
        yield self._message_latency
        return array.size

    def eq_create(self, name: str = "eq") -> EventQueue:
        """A fresh event queue for asynchronous submissions (``daos_eq_create``)."""
        return EventQueue(self.sim, name=name)

    # -- vectorized multi-op submission -------------------------------------------
    def request_multi(self, requests: List[Request], op: str = "multi") -> Request:
        """One Request carrying ``requests`` through the middleware chain.

        The sub-request bodies run sequentially inside the wrapper body, so
        on the default chain the simulated timeline is identical to
        submitting them one by one — what the batch saves is the per-op
        chain traversal and submit bookkeeping, which dominates small-op
        cost in index-update storms.  Per-sub-op stats are preserved: each
        sub-op's counter and :class:`OpStats` entry are updated exactly as
        the metrics middleware would (the wrapper op is additionally
        counted once under ``op``).  Non-default middleware applies to the
        wrapper as a unit: one fault-injection/retry/QoS decision covers
        the whole batch (QoS meters one token per covered sub-op, see
        :class:`~repro.serving.qos.QosAdmissionMiddleware`).
        """
        subs = tuple(requests)
        return Request(
            op=op,
            body=lambda: self._do_multi(subs),
            target=subs[0].target if subs else None,
            nbytes=sum(request.nbytes for request in subs),
            detail=len(subs),
            subrequests=subs,
        )

    def submit_multi(self, requests: List[Request], op: str = "multi"):
        """Submit ``requests`` as one multi-op; returns their results in order."""
        return (yield from self._submit(self.request_multi(requests, op=op)))

    def kv_put_many(self, kv: KeyValueObject, items):
        """Insert/overwrite many keys of one KV in a single multi-op submit.

        ``items`` is an iterable of ``(key, value)`` pairs.
        """
        requests = [self.request_kv_put(kv, key, value) for key, value in items]
        return (yield from self._submit(self.request_multi(requests, op="kv_put_multi")))

    def kv_get_many(self, kv: KeyValueObject, keys):
        """Look up many keys of one KV in a single multi-op submit.

        Returns the values in key order, ``None`` for absent keys (the
        ``kv_get_or_none`` contract, per key).
        """
        requests = [self.request_kv_get(kv, key) for key in keys]
        return (yield from self._submit(self.request_multi(requests, op="kv_get_multi")))

    def _do_multi(self, requests: Tuple[Request, ...]):
        """Drive each sub-request body, replaying per-op metrics accounting.

        The accounting block is the exact :class:`MetricsMiddleware` body,
        applied per sub-op — counts, latency and byte totals land in the
        same per-op slots whether ops were submitted singly or batched.
        """
        results = []
        append = results.append
        stats = self.stats
        op_metrics = self.op_metrics
        sim = self.sim
        for request in requests:
            request_op = request.op
            stats[request_op] = stats.get(request_op, 0) + 1
            entry = op_metrics.get(request_op)
            if entry is None:
                op_metrics[request_op] = entry = OpStats()
            start = sim.now
            try:
                result = yield from request.body()
            except BaseException:
                entry.observe(sim.now - start, request.nbytes, ok=False)
                raise
            entry.observe(sim.now - start, request.nbytes, ok=True)
            append(result)
        return results

    # -- small helpers -----------------------------------------------------------
    def _count(self, op: str) -> None:
        self.stats[op] = self.stats.get(op, 0) + 1

    def _latency(self):
        """One-way small-message latency."""
        return self.sim.timeout(self._message_latency)

    def _target_service(self, target_index: int, service_time: float):
        """Occupy a slot at a target for ``service_time``.

        The *authoritative* pool map is consulted first: ops addressed to a
        non-UP target are rejected before any functional state is touched
        (the server-side DER_TGT_DOWN a stale client observes), which is
        what makes the pool-map-refresh retry safe.
        """
        if self._health and not self.system.pool_map.is_up(target_index):
            raise TargetDownError(
                f"target {target_index} is "
                f"{self.system.pool_map.state(target_index).value}"
            )
        target = self.system.target(target_index)
        request = target.service.request()
        yield request
        try:
            yield self.sim.timeout(service_time)
        finally:
            target.service.release(request)

    def _refresh_pool_map(self):
        """Refetch the pool map from the pool service (``pool_query``).

        Returns ``True`` when the fetched map is newer than the cached view —
        the signal the refresh middleware uses to decide whether retrying
        can possibly help.
        """
        stale_version = self._map_view.version
        yield self._latency()
        yield from self._pool_service(self.config.health.pool_query_service_time)
        yield self._latency()
        self._map_view = self.system.pool_map.snapshot()
        self.map_refreshes += 1
        return self._map_view.version > stale_version

    def _pool_service(self, service_time: float):
        """Occupy the (serial) pool service for ``service_time``."""
        request = self.system.pool_service.request()
        yield request
        try:
            yield self.sim.timeout(service_time)
        finally:
            self.system.pool_service.release(request)

    def _lead_target(self, obj) -> int:
        """The object's metadata-servicing target, degraded-aware.

        When the nominal lead is unavailable in the cached view, metadata
        ops fall over to the first surviving layout target (the replica that
        takes over leadership in real DAOS).  Non-replicated objects keep
        their single target and let the authoritative check reject the op.
        """
        layout = obj.layout
        if self._health and layout[0] in self._map_view.unavailable:
            for target in layout:
                if target not in self._map_view.unavailable:
                    return target
        return layout[0]

    @staticmethod
    def _dkey_prefix(key: bytes) -> int:
        prefix = _DKEY_HASH_CACHE.get(key)
        if prefix is None:
            digest = hashlib.sha256(key).digest()
            prefix = int.from_bytes(digest[:4], "little")
            _DKEY_HASH_CACHE[key] = prefix
        return prefix

    def _key_candidates(self, kv: KeyValueObject, key: bytes) -> List[int]:
        """All replica targets servicing a dkey, hashed over the layout.

        Layout is replica-major (``replica * stripes + slot``); with
        ``replicas == 1`` this is the single hashed target the original
        placement used, bit for bit.
        """
        layout = kv.layout
        replicas = kv.oclass.replicas
        stripes = len(layout) // replicas
        slot = self._dkey_prefix(key) % stripes
        return [layout[replica * stripes + slot] for replica in range(replicas)]

    def _key_target(self, kv: KeyValueObject, key: bytes) -> int:
        """The dkey target a *read* is routed to (degraded-aware)."""
        layout = kv.layout
        if kv.oclass.replicas == 1:
            # Common case (every non-replicated class): one candidate, no
            # list to build — same target the general path would select.
            return layout[self._dkey_prefix(key) % len(layout)]
        candidates = self._key_candidates(kv, key)
        if self._health and len(candidates) > 1:
            up = [t for t in candidates if t not in self._map_view.unavailable]
            if up:
                return up[(self.address.node + self.address.socket) % len(up)]
        return candidates[0]

    # -- pool / container operations -----------------------------------------------
    def request_pool_connect(self, pool: Pool) -> Request:
        return Request(
            op="pool_connect",
            body=lambda: self._do_pool_connect(pool),
            detail=pool.label,
        )

    def pool_connect(self, pool: Pool):
        """Connect to a pool (handshake with the pool service)."""
        return (yield from self._submit(self.request_pool_connect(pool)))

    def _do_pool_connect(self, pool: Pool):
        yield self._latency()
        yield from self._pool_service(self.config.container_open_service_time)
        yield self._latency()
        return pool

    def request_container_create(
        self,
        pool: Pool,
        uuid: Optional[uuid_module.UUID] = None,
        label: str = "",
        is_default: bool = False,
    ) -> Request:
        return Request(
            op="container_create",
            body=lambda: self._do_container_create(pool, uuid, label, is_default),
            detail=label or str(uuid),
        )

    def container_create(
        self,
        pool: Pool,
        uuid: Optional[uuid_module.UUID] = None,
        label: str = "",
        is_default: bool = False,
    ):
        """Create a container; raises :class:`ContainerExistsError` on a race loss.

        The existence check happens inside the pool-service critical
        section, so md5-derived concurrent creates (§4) behave exactly like
        the real collective: one creator wins, the rest see EXIST.
        """
        return (
            yield from self._submit(
                self.request_container_create(pool, uuid, label, is_default)
            )
        )

    def _do_container_create(
        self,
        pool: Pool,
        uuid: Optional[uuid_module.UUID],
        label: str,
        is_default: bool,
    ):
        yield self._latency()
        request = self.system.pool_service.request()
        yield request
        try:
            yield self.sim.timeout(self.config.container_create_service_time)
            container = pool.create_container(uuid=uuid, label=label, is_default=is_default)
        finally:
            self.system.pool_service.release(request)
        yield self._latency()
        self._container_cache[(pool.label, str(container.uuid))] = container
        if label:
            self._container_cache[(pool.label, label)] = container
        return container

    @staticmethod
    def _cache_key(ref_or_container) -> str:
        if isinstance(ref_or_container, Container):
            return str(ref_or_container.uuid)
        return str(ref_or_container)

    def container_open(self, pool: Pool, ref: ContainerRef):
        """Open a container by UUID or label, cached per client (§5.2).

        The cache hit is a pure local lookup — no RPC is built and nothing
        passes through the middleware chain, exactly like a cached handle in
        libdaos.
        """
        cache_key = (pool.label, self._cache_key(ref))
        cached = self._container_cache.get(cache_key)
        if cached is not None:
            self._count("container_open_cached")
            return cached
        return (
            yield from self._submit(
                Request(
                    op="container_open",
                    body=lambda: self._do_container_open(pool, ref, cache_key),
                    detail=str(ref),
                )
            )
        )

    def _do_container_open(self, pool: Pool, ref: ContainerRef, cache_key):
        yield self._latency()
        yield from self._pool_service(self.config.container_open_service_time)
        container = pool.open_container(ref)
        yield self._latency()
        self._container_cache[cache_key] = container
        # A container may be addressable by both label and uuid.
        self._container_cache[(pool.label, str(container.uuid))] = container
        return container

    def container_exists(self, pool: Pool, ref: ContainerRef):
        """Probe existence (a pool-service lookup)."""
        if self._fast_ok and self.sim.tracer is None:
            return (
                yield self._fast_submit(
                    "container_exists", self._fast_container_exists(pool, ref), 0
                )
            )
        return (
            yield from self._submit(
                Request(
                    op="container_exists",
                    body=lambda: self._do_container_exists(pool, ref),
                    detail=str(ref),
                )
            )
        )

    def _do_container_exists(self, pool: Pool, ref: ContainerRef):
        yield self._latency()
        yield from self._pool_service(self.config.rpc_service_time)
        yield self._latency()
        return pool.has_container(ref)

    def container_destroy(self, pool: Pool, ref: ContainerRef):
        """Destroy a container, releasing every object's storage to the pool.

        Refunds follow each array's shard layout (clamped like
        ``array_punch``); KV bytes are not pool-charged and need no refund.
        Cached handles for the container are evicted on every client-visible
        alias (label and UUID).
        """
        return (
            yield from self._submit(
                Request(
                    op="container_destroy",
                    body=lambda: self._do_container_destroy(pool, ref),
                    detail=str(ref),
                )
            )
        )

    def _do_container_destroy(self, pool: Pool, ref: ContainerRef):
        yield self._latency()
        request = self.system.pool_service.request()
        yield request
        try:
            yield self.sim.timeout(self.config.container_create_service_time)
            container = pool.destroy_container(ref)
            for obj in list(container.objects()):
                if not isinstance(obj, ArrayObject) or obj.nbytes_stored == 0:
                    continue
                stripes = obj.oclass.resolve_stripes(self.system.n_targets)
                shards = shard_layout(
                    obj.nbytes_stored, stripes, self.config.stripe_cell_size
                )
                for shard_index, _offset, length in shards:
                    for target in self._replica_targets(obj, shard_index, write=True):
                        pool.refund(target, min(length, pool.target_used(target)))
        finally:
            self.system.pool_service.release(request)
        yield self._latency()
        self._container_cache.pop((pool.label, str(container.uuid)), None)
        if container.label:
            self._container_cache.pop((pool.label, container.label), None)

    def _container_touch(self, container: Container):
        """Pool-service touch charged for array ops in non-default containers.

        This is the modelled cost of per-container metadata traffic; it is
        what separates the paper's *full* mode from *no containers* (Fig 5;
        DESIGN.md §5).
        """
        if container.is_default:
            return
        yield from self._pool_service(self.config.container_touch_service_time)

    # -- KV operations ----------------------------------------------------------------
    def kv_open(self, container: Container, oid: ObjectId, oclass: ObjectClass = OC_S1):
        """Open (creating on first use) a KV object."""
        kv = container.get_or_create_kv(oid, oclass)
        if kv.lock is None:
            self.system.register_object(kv, oclass, container_salt=container.uuid.int)
        if self._fast_ok and self.sim.tracer is None:
            return (yield self._fast_submit("kv_open", self._fast_kv_open(kv), 0))
        return (
            yield from self._submit(
                Request(
                    op="kv_open",
                    body=lambda: self._do_kv_open(kv),
                    target=self._lead_target(kv),
                )
            )
        )

    def _do_kv_open(self, kv: KeyValueObject):
        yield self._latency()
        yield from self._target_service(self._lead_target(kv), self.config.rpc_service_time)
        yield self._latency()
        return kv

    def request_kv_put(self, kv: KeyValueObject, key: bytes, value: bytes) -> Request:
        return Request(
            op="kv_put",
            body=lambda: self._do_kv_put(kv, key, value),
            target=self._key_target(kv, key),
            nbytes=len(value),
            detail=key,
        )

    def kv_put(self, kv: KeyValueObject, key: bytes, value: bytes):
        """Insert/overwrite a key.

        Updates serialise at the object (exclusive hold for the put service
        time), which is the mechanism behind the paper's shared-index-KV
        contention (§5.2, Fig 4).
        """
        if self._fast_ok and self.sim.tracer is None:
            return (
                yield self._fast_submit(
                    "kv_put", self._fast_kv_put(kv, key, value), len(value)
                )
            )
        return (yield from self._submit(self.request_kv_put(kv, key, value)))

    def _kv_write_targets(self, kv: KeyValueObject, key: bytes) -> List[int]:
        """Targets a dkey update must service: every live replica.

        Raises :class:`TargetDownError` when the cached view shows no
        replica alive — the refresh middleware refetches the map and
        retries, or surfaces the loss when the map agrees.
        """
        candidates = self._key_candidates(kv, key)
        if self._health and len(candidates) > 1:
            up = [t for t in candidates if t not in self._map_view.unavailable]
            if not up:
                raise TargetDownError(f"all replicas of dkey {key!r} unavailable")
            return up
        return candidates

    def _kv_bulk(self, target_index: int, nbytes: int, write: bool):
        """Bulk flow for an over-threshold KV value (no extra target service)."""
        engine = self.system.engine_of_target(target_index)
        if write:
            path = self.fabric.write_path(self.address, engine)
        else:
            path = self.fabric.read_path(self.address, engine)
        yield self.net.transfer(
            path,
            nbytes,
            rate_cap=self.provider.per_flow_cap,
            name=f"{'kw' if write else 'kr'}:{target_index}",
        )

    def _kv_bulk_size(self, value: Optional[bytes]) -> int:
        """Value size when it crosses the bulk threshold, else 0 (inline)."""
        threshold = self.config.kv_bulk_threshold
        if threshold is None or value is None or len(value) < threshold:
            return 0
        return len(value)

    def _do_kv_put(self, kv: KeyValueObject, key: bytes, value: bytes):
        bulk = self._kv_bulk_size(value)
        yield self._latency()
        yield kv.lock.acquire_write()
        try:
            for target in self._kv_write_targets(kv, key):
                yield from self._target_service(
                    target, self.config.kv_put_service_time
                )
                if bulk:
                    # The bulk RDMA happens inside the update's serialisation
                    # window (the server pulls the value before it commits).
                    yield from self._kv_bulk(target, bulk, write=True)
            kv.put(key, value)
        finally:
            kv.lock.release_write()
        yield self._latency()

    def kv_get(self, kv: KeyValueObject, key: bytes):
        """Look up a key; raises :class:`KeyNotFoundError` if absent."""
        value = yield from self.kv_get_or_none(kv, key)
        if value is None:
            raise KeyNotFoundError(f"key {key!r} not found")
        return value

    def request_kv_get(self, kv: KeyValueObject, key: bytes) -> Request:
        return Request(
            op="kv_get",
            body=lambda: self._do_kv_get_or_none(kv, key),
            target=self._key_target(kv, key),
            detail=key,
        )

    def kv_get_or_none(self, kv: KeyValueObject, key: bytes):
        """Look up a key, returning ``None`` when absent (Algorithm 1 probe).

        Lookups hold the object's serialisation point for the (shorter) get
        service time — VOS dkey-tree descent on a hot shared object is what
        bends the Fig 4 read curves.
        """
        if self._fast_ok and self.sim.tracer is None:
            return (yield self._fast_submit("kv_get", self._fast_kv_get(kv, key), 0))
        return (yield from self._submit(self.request_kv_get(kv, key)))

    def _do_kv_get_or_none(self, kv: KeyValueObject, key: bytes):
        yield self._latency()
        yield kv.lock.acquire_write()
        try:
            yield from self._target_service(
                self._key_target(kv, key), self.config.kv_get_service_time
            )
            value = kv.get_or_none(key)
        finally:
            kv.lock.release_write()
        bulk = self._kv_bulk_size(value)
        if bulk:
            # Fetch bulk streams back after the dkey-tree descent released
            # the serialisation point — concurrent readers overlap here.
            yield from self._kv_bulk(self._key_target(kv, key), bulk, write=False)
        yield self._latency()
        return value

    def kv_list(self, kv: KeyValueObject):
        """Enumerate all keys (paged enumeration, one service charge per page)."""
        return (
            yield from self._submit(
                Request(
                    op="kv_list",
                    body=lambda: self._do_kv_list(kv),
                    target=self._lead_target(kv),
                )
            )
        )

    def _do_kv_list(self, kv: KeyValueObject):
        page_size = self.config.kv_list_page_size
        keys = list(kv.keys())
        yield self._latency()
        yield kv.lock.acquire_write()
        try:
            pages = max(1, -(-len(keys) // page_size))
            yield from self._target_service(
                self._lead_target(kv), self.config.kv_get_service_time * pages
            )
        finally:
            kv.lock.release_write()
        yield self._latency()
        return keys

    def kv_remove(self, kv: KeyValueObject, key: bytes):
        """Remove a key (same serialisation as a put)."""
        if self._fast_ok and self.sim.tracer is None:
            return (
                yield self._fast_submit("kv_remove", self._fast_kv_remove(kv, key), 0)
            )
        return (
            yield from self._submit(
                Request(
                    op="kv_remove",
                    body=lambda: self._do_kv_remove(kv, key),
                    target=self._key_target(kv, key),
                    detail=key,
                )
            )
        )

    def _do_kv_remove(self, kv: KeyValueObject, key: bytes):
        yield self._latency()
        yield kv.lock.acquire_write()
        try:
            for target in self._kv_write_targets(kv, key):
                yield from self._target_service(
                    target, self.config.kv_put_service_time
                )
            kv.remove(key)
        finally:
            kv.lock.release_write()
        yield self._latency()

    # -- Array operations ---------------------------------------------------------------
    def array_create(
        self, container: Container, oclass: ObjectClass = OC_S1, oid: Optional[ObjectId] = None
    ):
        """Create a new array (fresh OID unless one is supplied)."""
        if oid is None:
            oid = container.oid_allocator.allocate(oclass.class_id)
        array = container.get_or_create_array(oid, oclass)
        if array.lock is None:
            self.system.register_object(array, oclass, container_salt=container.uuid.int)
        if self._fast_ok and self.sim.tracer is None:
            return (
                yield self._fast_submit(
                    "array_create", self._fast_array_create(container, array), 0
                )
            )
        return (
            yield from self._submit(
                Request(
                    op="array_create",
                    body=lambda: self._do_array_create(container, array),
                    target=self._lead_target(array),
                )
            )
        )

    def _do_array_create(self, container: Container, array: ArrayObject):
        yield self._latency()
        yield from self._container_touch(container)
        yield from self._target_service(
            self._lead_target(array), self.config.array_create_service_time
        )
        yield self._latency()
        return array

    def array_open(self, container: Container, oid: ObjectId):
        """Open an existing array; raises :class:`ObjectNotFoundError`."""
        array = container.get_object(oid)
        if not isinstance(array, ArrayObject):
            raise InvalidArgumentError(f"object {oid} is not an Array")
        if self._fast_ok and self.sim.tracer is None:
            return (
                yield self._fast_submit(
                    "array_open", self._fast_array_open(container, array), 0
                )
            )
        return (
            yield from self._submit(
                Request(
                    op="array_open",
                    body=lambda: self._do_array_open(container, array),
                    target=self._lead_target(array),
                )
            )
        )

    def _do_array_open(self, container: Container, array: ArrayObject):
        yield self._latency()
        yield from self._container_touch(container)
        yield from self._target_service(
            self._lead_target(array), self.config.array_open_service_time
        )
        yield self._latency()
        return array

    def request_array_close(self, array: ArrayObject) -> Request:
        return Request(
            op="array_close",
            body=lambda: self._do_array_close(array),
            target=self._lead_target(array),
        )

    def array_close(self, array: ArrayObject):
        """Close an array handle (flush + release)."""
        if self._fast_ok and self.sim.tracer is None:
            return (
                yield self._fast_submit("array_close", self._fast_array_close(array), 0)
            )
        return (yield from self._submit(self.request_array_close(array)))

    def _do_array_close(self, array: ArrayObject):
        yield from self._target_service(
            self._lead_target(array), self.config.array_close_service_time
        )
        yield self._latency()

    def array_get_size(self, array: ArrayObject):
        """Query the array size (a lead-target RPC)."""
        if self._fast_ok and self.sim.tracer is None:
            return (
                yield self._fast_submit(
                    "array_get_size", self._fast_array_get_size(array), 0
                )
            )
        return (
            yield from self._submit(
                Request(
                    op="array_get_size",
                    body=lambda: self._do_array_get_size(array),
                    target=self._lead_target(array),
                )
            )
        )

    def _do_array_get_size(self, array: ArrayObject):
        yield self._latency()
        yield from self._target_service(self._lead_target(array), self.config.rpc_service_time)
        yield self._latency()
        return array.size

    def array_punch(
        self, container: Container, array: ArrayObject, pool: Optional[Pool] = None
    ):
        """Punch (delete) an array, refunding its storage to the pool.

        Refunds follow the shard layout of the stored bytes; per-target
        amounts are clamped to what is actually charged there, so pool
        accounting can never go negative even for arrays written through
        several versions.
        """
        return (
            yield from self._submit(
                Request(
                    op="array_punch",
                    body=lambda: self._do_array_punch(container, array, pool),
                    target=self._lead_target(array),
                )
            )
        )

    def _do_array_punch(
        self, container: Container, array: ArrayObject, pool: Optional[Pool]
    ):
        yield self._latency()
        yield array.lock.acquire_write()
        try:
            yield from self._target_service(
                self._lead_target(array), self.config.rpc_service_time
            )
            container.remove_object(array.oid)
            if pool is not None and array.nbytes_stored > 0:
                stripes = array.oclass.resolve_stripes(self.system.n_targets)
                shards = shard_layout(
                    array.nbytes_stored, stripes, self.config.stripe_cell_size
                )
                for shard_index, _offset, length in shards:
                    for target in self._replica_targets(array, shard_index, write=True):
                        pool.refund(target, min(length, pool.target_used(target)))
        finally:
            array.lock.release_write()
        yield self._latency()

    def array_set_size(self, array: ArrayObject, size: int, pool: Optional[Pool] = None):
        """Truncate/extend the array to ``size`` bytes (lead-target RPC).

        Truncation refunds the discarded bytes to the pool when one is given.
        """
        return (
            yield from self._submit(
                Request(
                    op="array_set_size",
                    body=lambda: self._do_array_set_size(array, size, pool),
                    target=self._lead_target(array),
                )
            )
        )

    def _do_array_set_size(self, array: ArrayObject, size: int, pool: Optional[Pool]):
        yield self._latency()
        yield array.lock.acquire_write()
        try:
            yield from self._target_service(
                self._lead_target(array), self.config.rpc_service_time
            )
            before = array.nbytes_stored
            array.truncate(size)
            if pool is not None:
                freed = before - array.nbytes_stored
                if freed > 0:
                    # Refund against the lead target: byte-accurate per-target
                    # refunds would need extent placement history; the lead
                    # target approximation keeps pool totals correct.
                    pool.refund(self._lead_target(array), min(freed, pool.target_used(self._lead_target(array))))
        finally:
            array.lock.release_write()
        yield self._latency()

    def _shard_io(self, target_index: int, nbytes: int, write: bool):
        """One shard: target service overhead, then the bulk flow."""
        service = (
            self.config.shard_write_overhead if write else self.config.shard_read_overhead
        )
        yield from self._target_service(target_index, service)
        engine = self.system.engine_of_target(target_index)
        if write:
            path = self.fabric.write_path(self.address, engine)
        else:
            path = self.fabric.read_path(self.address, engine)
        yield self.net.transfer(
            path,
            nbytes,
            rate_cap=self.provider.per_flow_cap,
            name=f"{'w' if write else 'r'}:{target_index}",
        )

    def _replica_targets(self, array: ArrayObject, shard_index: int, write: bool):
        """Target(s) a shard touches: all replicas on write, one on read.

        Reads pick the replica deterministically from the client address so
        a population of clients spreads over the replica groups.

        Under an unhealthy cached pool map the selection degrades: writes go
        to every *surviving* replica (rebuild re-protects the rest), reads
        are served by a surviving one.  A shard with no live replica raises
        :class:`TargetDownError` — for non-replicated classes the layout
        target is returned untouched and the authoritative check in
        :meth:`_target_service` rejects the op instead (honest data loss).
        """
        stripes = array.oclass.resolve_stripes(self.system.n_targets)
        replicas = array.oclass.replicas
        candidates = [
            array.layout[replica * stripes + shard_index] for replica in range(replicas)
        ]
        if self._health and replicas > 1:
            up = [t for t in candidates if t not in self._map_view.unavailable]
            if not up:
                raise TargetDownError(
                    f"all {replicas} replicas of {array.oid} shard {shard_index} "
                    "unavailable"
                )
            candidates = up
        if write:
            return candidates
        chosen = (self.address.node + self.address.socket) % len(candidates)
        return [candidates[chosen]]

    def _array_transfer(self, array: ArrayObject, offset: int, size: int, pool: Optional[Pool], write: bool):
        """Move ``size`` bytes of an array: split into shards, run them in parallel.

        The per-shard issue cost is serial at the client (libdaos builds and
        posts one RPC per shard); the shard I/Os themselves proceed
        concurrently.  Writes go to every replica of each shard; reads are
        served by one replica.
        """
        stripes = array.oclass.resolve_stripes(self.system.n_targets)
        shards = shard_layout(size, stripes, self.config.stripe_cell_size)
        charged: List[Tuple[int, int]] = []
        try:
            if pool is not None and write:
                for shard_index, _shard_offset, length in shards:
                    for target in self._replica_targets(array, shard_index, write=True):
                        pool.charge(target, length)
                        charged.append((target, length))
            simple = len(shards) == 1 and array.oclass.replicas == 1
            if simple:
                yield self.sim.timeout(
                    self.config.shard_issue_write_time
                    if write
                    else self.config.shard_issue_read_time
                )
                shard_index, _, length = shards[0]
                yield from self._shard_io(array.layout[shard_index], length, write)
                return
            if not write:
                # Reads prepare one fetch descriptor per shard before any data
                # moves (then reassemble); this up-front per-shard cost is what
                # penalises wide striping for reads (Fig 6: S2 beats SX).
                yield self.sim.timeout(len(shards) * self.config.shard_issue_read_time)
            events = []
            for shard_index, _shard_offset, length in shards:
                if write:
                    # Writes scatter eagerly: issue cost pipelines with the
                    # transfers already in flight.
                    yield self.sim.timeout(self.config.shard_issue_write_time)
                for target in self._replica_targets(array, shard_index, write):
                    proc = self.sim.process(
                        self._shard_io(target, length, write),
                        name=f"shard{shard_index}@{target}",
                    )
                    events.append(proc)
            if events:
                yield self.sim.all_of(events)
        except TargetDownError:
            # A target failed between the cached-view selection and the
            # authoritative check (or mid-flight): roll the space accounting
            # back so the map-refresh retry charges the new selection once.
            for target, length in charged:
                pool.refund(target, min(length, pool.target_used(target)))
            raise

    def request_array_write(
        self,
        array: ArrayObject,
        offset: int,
        payload: Payload,
        pool: Optional[Pool] = None,
    ) -> Request:
        if not isinstance(payload, Payload):
            payload = BytesPayload(bytes(payload))
        return Request(
            op="array_write",
            body=lambda: self._do_array_write(array, offset, payload, pool),
            target=self._lead_target(array),
            nbytes=payload.size,
        )

    def array_write(
        self,
        array: ArrayObject,
        offset: int,
        payload: Payload,
        pool: Optional[Pool] = None,
    ):
        """Write ``payload`` at ``offset``.

        Holds the object's write lock for the duration of the transfer:
        concurrent readers of the *same* array must wait, which is the
        array-level contention the paper describes for the *no index* mode
        under access pattern B (§5.3).
        """
        return (
            yield from self._submit(self.request_array_write(array, offset, payload, pool))
        )

    def _do_array_write(
        self, array: ArrayObject, offset: int, payload: Payload, pool: Optional[Pool]
    ):
        yield self._latency()
        yield array.lock.acquire_write()
        try:
            yield from self._array_transfer(array, offset, payload.size, pool, write=True)
            array.write(offset, payload)
        finally:
            array.lock.release_write()
        yield self._latency()

    def request_array_read(self, array: ArrayObject, offset: int, length: int) -> Request:
        return Request(
            op="array_read",
            body=lambda: self._do_array_read(array, offset, length),
            target=self._lead_target(array),
            nbytes=length,
        )

    def array_read(self, array: ArrayObject, offset: int, length: int):
        """Read ``[offset, offset+length)``; concurrent reads share the lock."""
        return (yield from self._submit(self.request_array_read(array, offset, length)))

    def _do_array_read(self, array: ArrayObject, offset: int, length: int):
        yield self._latency()
        yield array.lock.acquire_read()
        try:
            payload = array.read(offset, length)  # validate range before moving data
            yield from self._array_transfer(array, offset, length, None, write=False)
        finally:
            array.lock.release_read()
        yield self._latency()
        return payload
