"""Assembly of a whole DAOS system over a simulated cluster.

The :class:`DaosSystem` instantiates the engines and targets described by
the cluster configuration, owns the pool-service serialisation point, and
provides pool creation plus object registration (placement + per-object
locks).  Per-process :class:`~repro.daos.client.DaosClient` objects drive
I/O against it.
"""

from __future__ import annotations

import uuid as uuid_module
from typing import Dict, List, Optional

from repro.daos.engine import Engine, Target
from repro.daos.errors import InvalidArgumentError
from repro.daos.health import PoolMap, health_monitor
from repro.daos.locks import RWLock
from repro.daos.objclass import ObjectClass
from repro.daos.placement import place_object, remap_target
from repro.daos.pool import Pool
from repro.hardware.topology import Cluster
from repro.network.fabric import NodeSocket
from repro.simulation.resources import Resource

__all__ = ["DaosSystem"]


class DaosSystem:
    """Engines, targets, pools, and the pool service of one deployment."""

    #: Registry name of this storage backend (see :mod:`repro.backends`).
    backend_name = "daos"

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.config = cluster.config.daos
        sim = cluster.sim

        self.engines: List[Engine] = []
        self.targets: List[Target] = []
        for addr in cluster.engine_addresses:
            engine = Engine(
                sim, addr, first_target_index=len(self.targets), config=self.config
            )
            self.engines.append(engine)
            self.targets.extend(engine.targets)

        #: The pool service: the serial metadata authority for pool and
        #: container operations (hosted by the first engine in real DAOS).
        self.pool_service = Resource(sim, capacity=1, name="pool_service")
        self.pools: Dict[str, Pool] = {}
        self._uuid_counter = 0

        #: Authoritative target-health map.  Always present (version 1, all
        #: UP), but only ever *changes* when the health subsystem is enabled
        #: — so the default path stays bit-identical to a health-free build.
        self.pool_map = PoolMap(len(self.targets))
        self.rebuild = None
        self._schedule_armed = False
        health = self.config.health
        if health.enabled:
            from repro.daos.rebuild import RebuildService

            self.rebuild = RebuildService(self)
            if health.arm_at_start and health.events:
                self.arm_failure_schedule()

    # -- clients ------------------------------------------------------------------
    def make_client(self, address: NodeSocket, middleware=None):
        """A per-process client bound to ``address`` for this backend.

        The factory is the only place consumers need a concrete client
        class; everything downstream talks the ``StorageClient`` protocol
        (:mod:`repro.backends.protocol`), which is what lets a posixfs
        deployment slot in behind the same benches and ``FieldIO``.
        """
        from repro.daos.client import DaosClient

        return DaosClient(self, address, middleware=middleware)

    # -- health -------------------------------------------------------------------
    def arm_failure_schedule(self) -> None:
        """Start the health monitor driving the configured failure events.

        Event times are relative to *now*, so an experiment can run a clean
        warm-up phase and arm the schedule when the measured phase starts
        (``HealthConfig.arm_at_start=False``).  Arming twice, or arming with
        the subsystem disabled, is an error — both would silently distort
        the event sequence the determinism contract relies on.
        """
        if not self.config.health.enabled:
            raise InvalidArgumentError("health subsystem is disabled by config")
        if self._schedule_armed:
            raise InvalidArgumentError("failure schedule is already armed")
        self._schedule_armed = True
        if self.config.health.events:
            self.cluster.sim.process(health_monitor(self), name="health_monitor")

    # -- identity helpers --------------------------------------------------------
    def deterministic_uuid(self, namespace: str) -> uuid_module.UUID:
        """A UUID derived from the system seed and a name (reproducible runs)."""
        self._uuid_counter += 1
        return uuid_module.uuid5(
            uuid_module.NAMESPACE_OID,
            f"{self.cluster.config.seed}/{namespace}/{self._uuid_counter}",
        )

    # -- pools --------------------------------------------------------------------
    def create_pool(
        self, label: str = "pool0", scm_bytes_per_target: Optional[int] = None
    ) -> Pool:
        """Create a pool spanning every target of every engine.

        By default the pool reserves each target's full share of its
        socket's SCM region; the reservation is allocated from the regions
        so capacity misconfiguration fails loudly at create time.
        """
        if label in self.pools:
            raise InvalidArgumentError(f"pool label {label!r} already exists")
        per_engine_targets = self.config.targets_per_engine
        if scm_bytes_per_target is None:
            region = self.cluster.scm_region(self.engines[0].addr)
            scm_bytes_per_target = region.free // per_engine_targets
        pool = Pool(
            uuid=self.deterministic_uuid(f"pool/{label}"),
            label=label,
            n_targets=len(self.targets),
            scm_bytes_per_target=scm_bytes_per_target,
        )
        for engine in self.engines:
            region = self.cluster.scm_region(engine.addr)
            region.allocate(scm_bytes_per_target * per_engine_targets)
        self.pools[label] = pool
        return pool

    # -- object registration --------------------------------------------------------
    def register_object(self, obj, oclass: ObjectClass, container_salt: int = 0) -> None:
        """Compute placement for a fresh object and attach its lock.

        Called by the client when an object is first materialised.  The
        layout lists *global* target indices, one per shard.
        ``container_salt`` comes from the owning container's UUID so that
        the per-container OID sequences spread over distinct targets.
        """
        obj.layout = place_object(
            obj.oid,
            oclass,
            len(self.targets),
            container_salt=container_salt,
            n_groups=len(self.engines),
        )
        # Objects created while targets are down avoid them from the start —
        # creation is a server-side act, so the authoritative map applies.
        unavailable = self.pool_map.unavailable
        if unavailable:
            for position, target in enumerate(obj.layout):
                if target in unavailable:
                    obj.layout[position] = remap_target(
                        obj.oid,
                        position,
                        avoid=unavailable | set(obj.layout),
                        n_targets=len(self.targets),
                    )
        obj.lock = RWLock(self.cluster.sim, name=f"obj:{obj.oid}")

    def target(self, global_index: int) -> Target:
        return self.targets[global_index]

    def engine_of_target(self, global_index: int) -> NodeSocket:
        """Engine address that owns a target."""
        return self.targets[global_index].engine_addr

    @property
    def n_targets(self) -> int:
        return len(self.targets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DaosSystem {len(self.engines)} engines, {len(self.targets)} targets, "
            f"{len(self.pools)} pools>"
        )
