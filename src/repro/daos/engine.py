"""DAOS engines and targets: the server-side service model.

An engine is the I/O process on one socket of a server node (§3); it manages
``targets_per_engine`` targets, each serviced by a group of threads.  A
:class:`Target` is modelled as a FIFO :class:`~repro.simulation.resources.Resource`
with limited concurrency: metadata operations occupy a slot for their
service time, so a hot target queues and the queueing delay is what the
clients observe.  Bulk data bandwidth is *not* served through these slots —
it rides the fluid-flow SCM/adapter links of the fabric.
"""

from __future__ import annotations

from typing import List

from repro.config import DaosServiceConfig
from repro.network.fabric import NodeSocket
from repro.simulation.core import Simulator
from repro.simulation.resources import Resource

__all__ = ["Target", "Engine"]


class Target:
    """One DAOS target: a service-thread group plus its share of SCM."""

    def __init__(
        self,
        sim: Simulator,
        global_index: int,
        engine_addr: NodeSocket,
        local_index: int,
        concurrency: int,
    ) -> None:
        self.global_index = global_index
        self.engine_addr = engine_addr
        self.local_index = local_index
        self.service = Resource(
            sim,
            capacity=concurrency,
            name=f"target{global_index}@{engine_addr.node}.{engine_addr.socket}",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Target {self.global_index} on engine {self.engine_addr}>"


class Engine:
    """One DAOS engine: the targets on one socket of a server node.

    Engines carry the coarse health state the failure schedule toggles
    (whole-engine loss is the paper-relevant failure unit: one I/O process
    per socket).  Per-target states and map versioning live in the pool map
    (:class:`~repro.daos.health.PoolMap`); ``alive`` here is what the health
    monitor flips and what ``repr`` surfaces for debugging.
    """

    def __init__(
        self,
        sim: Simulator,
        addr: NodeSocket,
        first_target_index: int,
        config: DaosServiceConfig,
    ) -> None:
        self.addr = addr
        self.alive = True
        #: Times this engine failed (for tests and rebuild stats).
        self.failure_count = 0
        self.targets: List[Target] = [
            Target(
                sim,
                global_index=first_target_index + i,
                engine_addr=addr,
                local_index=i,
                concurrency=config.target_concurrency,
            )
            for i in range(config.targets_per_engine)
        ]

    @property
    def n_targets(self) -> int:
        return len(self.targets)

    def fail(self) -> None:
        """Take the engine down (scheduled engine loss)."""
        self.alive = False
        self.failure_count += 1

    def reintegrate(self) -> None:
        """Bring a failed engine back into the system."""
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "" if self.alive else " DEAD"
        return (
            f"<Engine {self.addr}{state} targets "
            f"{self.targets[0].global_index}..{self.targets[-1].global_index}>"
        )
