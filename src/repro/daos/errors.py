"""Storage error hierarchy, shared by every backend.

Mirrors the DER_* error space of the real DAOS client library closely enough
for the field I/O layer to make the same control-flow decisions (e.g. create
races resolving via "already exists", lookups failing via "nonexistent").

The hierarchy is deliberately backend-agnostic: POSIX-model failures map
onto the same tree (lock timeout and MDS overload are
:class:`SimulatedFaultError` subclasses the retry middleware already
handles; a full OST surfaces as :class:`NoSpaceError`, exactly like an
exhausted SCM pool), so ``FieldIO`` and the benchmarks never branch on the
backend in their error paths.
"""

from __future__ import annotations

__all__ = [
    "DaosError",
    "ContainerExistsError",
    "ContainerNotFoundError",
    "ObjectNotFoundError",
    "KeyNotFoundError",
    "NoSpaceError",
    "InvalidArgumentError",
    "SimulatedFaultError",
    "LockTimeoutError",
    "MetadataOverloadError",
    "ServiceBusyError",
    "TargetDownError",
]


class DaosError(Exception):
    """Base class for all simulated DAOS errors."""

    #: Numeric code loosely mirroring DER_* values.
    code: int = -1000

    def __init__(self, message: str = "") -> None:
        super().__init__(message or type(self).__doc__)


class ContainerExistsError(DaosError):
    """Container with this label/uuid already exists (DER_EXIST)."""

    code = -1004


class ContainerNotFoundError(DaosError):
    """No such container (DER_NONEXIST)."""

    code = -1005


class ObjectNotFoundError(DaosError):
    """No such object in the container (DER_NONEXIST)."""

    code = -1005


class KeyNotFoundError(DaosError):
    """Key absent from Key-Value object (DER_NONEXIST)."""

    code = -1005


class NoSpaceError(DaosError):
    """Pool out of SCM space (DER_NOSPACE)."""

    code = -1007


class InvalidArgumentError(DaosError):
    """Malformed argument to a DAOS call (DER_INVAL)."""

    code = -1003


class SimulatedFaultError(DaosError):
    """Injected fault reproducing an instability the paper reports (§7)."""

    code = -1026


class LockTimeoutError(SimulatedFaultError):
    """Distributed lock request timed out under contention.

    Raised by the posixfs backend when an extent/flock request joins a
    conflict queue that already exceeds the configured depth — the Lustre
    LDLM ``-ETIMEDOUT``/evicted-client failure mode.  Subclassing
    :class:`SimulatedFaultError` keeps the taxonomy backend-agnostic: the
    standard retry middleware backs off and re-requests, so ``FieldIO`` and
    the benches need no backend branching.
    """


class MetadataOverloadError(SimulatedFaultError):
    """Metadata server request queue overflowed (server overload).

    The posixfs analogue of a Lustre MDS dropping/abandoning requests under
    load (client sees ``-ENODEV``/timeout and retries).  Mapped onto
    :class:`SimulatedFaultError` so the existing retry-with-backoff
    middleware handles it identically to an injected RPC fault.
    """


class ServiceBusyError(SimulatedFaultError):
    """Request shed by admission control: the service is over capacity.

    Raised by the serving tier's QoS middleware when a tenant is out of
    rate-limit tokens *and* its wait queue is already at the configured
    depth — the DER_BUSY/overload answer a gateway returns instead of
    letting queues grow without bound.  Subclassing
    :class:`SimulatedFaultError` makes the shed *retryable*: a client that
    installs the standard retry middleware backs off and re-offers the
    request, while open-loop load generators may equally count the shed
    and move on.
    """

    code = -1012


class TargetDownError(DaosError):
    """Addressed target is DOWN/REBUILDING/EXCLUDED (DER_TGT_DOWN).

    Raised server-side before any functional state is touched, so the
    client's pool-map-refresh retry can safely re-route the op to a
    surviving replica (degraded read/write) — or surface the loss when the
    object has no surviving replica.
    """

    code = -1037
