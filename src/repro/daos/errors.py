"""DAOS error hierarchy.

Mirrors the DER_* error space of the real DAOS client library closely enough
for the field I/O layer to make the same control-flow decisions (e.g. create
races resolving via "already exists", lookups failing via "nonexistent").
"""

from __future__ import annotations

__all__ = [
    "DaosError",
    "ContainerExistsError",
    "ContainerNotFoundError",
    "ObjectNotFoundError",
    "KeyNotFoundError",
    "NoSpaceError",
    "InvalidArgumentError",
    "SimulatedFaultError",
    "TargetDownError",
]


class DaosError(Exception):
    """Base class for all simulated DAOS errors."""

    #: Numeric code loosely mirroring DER_* values.
    code: int = -1000

    def __init__(self, message: str = "") -> None:
        super().__init__(message or type(self).__doc__)


class ContainerExistsError(DaosError):
    """Container with this label/uuid already exists (DER_EXIST)."""

    code = -1004


class ContainerNotFoundError(DaosError):
    """No such container (DER_NONEXIST)."""

    code = -1005


class ObjectNotFoundError(DaosError):
    """No such object in the container (DER_NONEXIST)."""

    code = -1005


class KeyNotFoundError(DaosError):
    """Key absent from Key-Value object (DER_NONEXIST)."""

    code = -1005


class NoSpaceError(DaosError):
    """Pool out of SCM space (DER_NOSPACE)."""

    code = -1007


class InvalidArgumentError(DaosError):
    """Malformed argument to a DAOS call (DER_INVAL)."""

    code = -1003


class SimulatedFaultError(DaosError):
    """Injected fault reproducing an instability the paper reports (§7)."""

    code = -1026


class TargetDownError(DaosError):
    """Addressed target is DOWN/REBUILDING/EXCLUDED (DER_TGT_DOWN).

    Raised server-side before any functional state is touched, so the
    client's pool-map-refresh retry can safely re-route the op to a
    surviving replica (degraded read/write) — or surface the loss when the
    object has no surviving replica.
    """

    code = -1037
