"""A FIFO readers-writer lock over simulation events.

Object updates in the model serialise at a per-object point (the VOS tree /
dkey leader), while lookups proceed concurrently but must not interleave
with an in-flight update.  That is exactly readers-writer semantics.  Grant
order is FIFO with batched readers: consecutive queued readers are admitted
together, a queued writer blocks later readers — so neither side starves,
and the high-contention benchmarks (§5.2, shared forecast index KV) exhibit
the fair-queueing behaviour a real service gives.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Tuple

from repro.simulation.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.core import Simulator

__all__ = ["RWLock"]


class RWLock:
    """FIFO readers-writer lock.

    Usage inside a simulated process::

        yield lock.acquire_read()
        ...
        lock.release_read()

        yield lock.acquire_write()
        ...
        lock.release_write()
    """

    __slots__ = ("sim", "name", "_readers", "_writer", "_queue", "_rname", "_wname")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._readers = 0
        self._writer = False
        #: Queue of (is_writer, event) in arrival order.
        self._queue: Deque[Tuple[bool, Event]] = deque()
        # Acquires run per KV/array op; the event names are built once.
        self._rname = f"{name}:rlock"
        self._wname = f"{name}:wlock"

    @property
    def readers(self) -> int:
        return self._readers

    @property
    def write_locked(self) -> bool:
        return self._writer

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def acquire_read(self) -> Event:
        """Event that triggers once shared (read) access is granted."""
        event = Event(self.sim, name=self._rname)
        if not self._writer and not self._queue:
            self._readers += 1
            event.succeed(self)
        else:
            self._queue.append((False, event))
        return event

    def acquire_write(self) -> Event:
        """Event that triggers once exclusive (write) access is granted."""
        event = Event(self.sim, name=self._wname)
        if not self._writer and self._readers == 0 and not self._queue:
            self._writer = True
            event.succeed(self)
        else:
            self._queue.append((True, event))
        return event

    def try_acquire_write(self) -> bool:
        """Claim exclusive access without allocating a grant event.

        Returns ``True`` (write lock held, release with
        :meth:`release_write`) exactly when :meth:`acquire_write` would have
        granted immediately.  Fast-path counterpart of
        :meth:`~repro.simulation.resources.Resource.try_acquire`: only valid
        when the simulator instant is settled, so the elided grant cannot be
        reordered against a same-instant event.
        """
        if not self._writer and self._readers == 0 and not self._queue:
            self._writer = True
            return True
        return False

    def release_read(self) -> None:
        if self._readers <= 0:
            raise RuntimeError(f"release_read() with no readers on {self.name!r}")
        self._readers -= 1
        self._grant()

    def release_write(self) -> None:
        if not self._writer:
            raise RuntimeError(f"release_write() with no writer on {self.name!r}")
        self._writer = False
        self._grant()

    def _grant(self) -> None:
        if self._writer:
            return
        # Admit a leading writer if the lock is idle, else a batch of readers.
        if self._queue and self._queue[0][0]:
            if self._readers == 0:
                _, event = self._queue.popleft()
                self._writer = True
                event.succeed(self)
            return
        while self._queue and not self._queue[0][0]:
            _, event = self._queue.popleft()
            self._readers += 1
            event.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "W" if self._writer else f"R{self._readers}"
        return f"<RWLock {self.name!r} {state} queue={len(self._queue)}>"
