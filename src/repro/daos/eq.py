"""Event queues: the ``daos_eq_create`` / ``daos_eq_poll`` analogue.

Real DAOS is natively asynchronous: every ``daos_*`` call takes an optional
``daos_event_t`` bound to an event queue, and callers overlap operations by
launching several and reaping completions with ``daos_eq_poll``.  The
paper's follow-up work (Manubens et al., arXiv:2404.03107) shows that this
overlap — index updates concurrent with array transfers — is the key lever
for NWP write throughput.

:class:`EventQueue` provides that API shape over the discrete-event
simulator: ``launch``/``submit`` start an operation as a simulation process,
``poll`` suspends the caller until completions are available, ``test`` reaps
without blocking.  Completions carry the op's value *or* its error (like
``daos_event_t.ev_error``); failures parked in the queue are defused so the
simulator does not crash before the caller reaps them — but callers must
reap and check, exactly as with the real API.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from repro.daos.rpc import Completion, Request
from repro.simulation.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.daos.client import DaosClient
    from repro.simulation.core import Simulator
    from repro.simulation.process import Process

__all__ = ["EventQueue"]


class EventQueue:
    """A queue of in-flight asynchronous operations over the simulator.

    Completions are appended in simulation-completion order (deterministic:
    the kernel breaks time ties by scheduling sequence), so polling the same
    workload twice yields identical completion streams.
    """

    def __init__(self, sim: "Simulator", name: str = "eq") -> None:
        self.sim = sim
        self.name = name
        self._inflight: Dict["Process", str] = {}
        self._completed: List[Completion] = []
        #: Poll wakeup: triggered by the next completion.  Pollers wait on
        #: this instead of the in-flight processes themselves, so a *failed*
        #: op never throws into the poller — its error is parked as a
        #: Completion until reaped, like ``daos_event_t.ev_error``.
        self._wakeup: Optional[Event] = None

    # -- introspection -------------------------------------------------------
    @property
    def n_inflight(self) -> int:
        """Operations launched but not yet completed."""
        return len(self._inflight)

    @property
    def n_ready(self) -> int:
        """Completions waiting to be reaped."""
        return len(self._completed)

    def __len__(self) -> int:
        return self.n_inflight + self.n_ready

    # -- submission ----------------------------------------------------------
    def launch(self, generator: Generator, op: str = "async_op",
               request: Optional[Request] = None) -> "Process":
        """Start ``generator`` as an in-flight async operation.

        Returns the underlying :class:`Process` (itself an event, so callers
        may also wait on it directly).  The completion — value or error — is
        parked in the queue until reaped via :meth:`poll`/:meth:`test`.
        """
        submitted = self.sim.now
        process = self.sim.process(generator, name=f"{self.name}:{op}")
        self._inflight[process] = op

        def _on_done(event, op=op, request=request, submitted=submitted, process=process):
            if event._ok:
                value, error = event._value, None
            else:
                event.defuse()  # parked in the queue; reaped by poll()/test()
                value, error = None, event.value
            self._inflight.pop(process, None)
            self._completed.append(
                Completion(
                    op=op,
                    value=value,
                    error=error,
                    submitted=submitted,
                    completed=self.sim.now,
                    request=request,
                )
            )
            wakeup = self._wakeup
            if wakeup is not None and not wakeup.triggered:
                wakeup.succeed()

        process.add_callback(_on_done)
        return process

    def submit(self, client: "DaosClient", request: Request) -> "Process":
        """Submit a built :class:`Request` through ``client``'s middleware chain."""
        return self.launch(client._submit(request), op=request.op, request=request)

    # -- reaping -------------------------------------------------------------
    def test(self) -> List[Completion]:
        """Reap every ready completion without blocking (``daos_eq_test``)."""
        ready, self._completed = self._completed, []
        return ready

    def poll(self, min_completions: int = 1):
        """Suspend until ``min_completions`` are ready; reap and return them.

        A generator to be driven with ``yield from`` inside a simulation
        process (``daos_eq_poll`` with an infinite timeout).  Returns
        immediately — possibly with fewer completions — once nothing is left
        in flight, like a poll on a draining queue.
        """
        while len(self._completed) < min_completions and self._inflight:
            yield self._next_wakeup()
        return self.test()

    def wait_all(self):
        """Suspend until every in-flight op completes; reap everything."""
        while self._inflight:
            yield self._next_wakeup()
        return self.test()

    def _next_wakeup(self) -> Event:
        if self._wakeup is None or self._wakeup.triggered:
            self._wakeup = Event(self.sim, name=f"{self.name}:wakeup")
        return self._wakeup

    @staticmethod
    def raise_first_error(completions: List[Completion]) -> List[Completion]:
        """Re-raise the first failed completion's error, else pass through."""
        for completion in completions:
            if completion.error is not None:
                raise completion.error
        return completions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EventQueue {self.name!r} {len(self._inflight)} inflight, "
            f"{len(self._completed)} ready>"
        )
