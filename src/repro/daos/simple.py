"""A pydaos-flavoured blocking convenience API.

Real DAOS ships ``pydaos``, whose containers expose dictionary-like Python
objects (§2: object stores "enable implementation of ... programming
language interfaces").  This module mirrors that ergonomics over the
simulated stack: :class:`SimpleDaos` owns a deployment and hands out
:class:`DDict` (KV-backed mapping) and :class:`DArray` (array-backed
buffer) objects whose methods block by running the embedded simulator —
no generators in sight, ideal for notebooks and small tools.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.config import ClusterConfig
from repro.daos.objclass import OC_S1, OC_SX, ObjectClass
from repro.daos.payload import BytesPayload, Payload

__all__ = ["SimpleDaos", "DDict", "DArray"]


class SimpleDaos:
    """A self-contained simulated deployment with blocking helpers.

    ``backend`` selects the storage model (:mod:`repro.backends`): the same
    dictionary/array ergonomics work over the posixfs backend, where a
    ``DDict`` becomes a directory of small files.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        container: str = "pydaos",
        backend: str = "daos",
    ):
        from repro.backends.registry import build_deployment

        self.config = config or ClusterConfig()
        self.cluster, self.system, self.pool = build_deployment(
            self.config, backend=backend
        )
        self.client = self.system.make_client(self.cluster.client_addresses(1)[0])
        self.container = self._run(
            self.client.container_create(self.pool, label=container, is_default=True)
        )

    def _run(self, generator):
        process = self.cluster.sim.process(generator)
        return self.cluster.sim.run(until=process)

    @property
    def elapsed(self) -> float:
        """Simulated seconds consumed so far."""
        return self.cluster.sim.now

    # -- factories -----------------------------------------------------------
    def dict(self, oclass: ObjectClass = OC_SX) -> "DDict":
        """A fresh dictionary object."""
        oid = self.container.oid_allocator.allocate(oclass.class_id)
        kv = self._run(self.client.kv_open(self.container, oid, oclass))
        return DDict(self, kv)

    def array(self, oclass: ObjectClass = OC_S1) -> "DArray":
        """A fresh array object."""
        array = self._run(self.client.array_create(self.container, oclass))
        return DArray(self, array)


class DDict:
    """Mapping-style view of a DAOS KV object (keys and values are bytes)."""

    def __init__(self, daos: SimpleDaos, kv) -> None:
        self._daos = daos
        self._kv = kv

    def __setitem__(self, key: bytes, value: bytes) -> None:
        self._daos._run(self._daos.client.kv_put(self._kv, key, value))

    def __getitem__(self, key: bytes) -> bytes:
        return self._daos._run(self._daos.client.kv_get(self._kv, key))

    def get(self, key: bytes, default: Optional[bytes] = None) -> Optional[bytes]:
        value = self._daos._run(self._daos.client.kv_get_or_none(self._kv, key))
        return default if value is None else value

    def __delitem__(self, key: bytes) -> None:
        self._daos._run(self._daos.client.kv_remove(self._kv, key))

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def keys(self) -> List[bytes]:
        return self._daos._run(self._daos.client.kv_list(self._kv))

    def __iter__(self) -> Iterator[bytes]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._kv)


class DArray:
    """Byte-buffer view of a DAOS Array object."""

    def __init__(self, daos: SimpleDaos, array) -> None:
        self._daos = daos
        self._array = array

    @property
    def oid(self):
        return self._array.oid

    def write(self, offset: int, data) -> None:
        if not isinstance(data, Payload):
            data = BytesPayload(bytes(data))
        self._daos._run(
            self._daos.client.array_write(
                self._array, offset, data, pool=self._daos.pool
            )
        )

    def read(self, offset: int, length: int) -> bytes:
        payload = self._daos._run(
            self._daos.client.array_read(self._array, offset, length)
        )
        return payload.to_bytes()

    def size(self) -> int:
        return self._daos._run(self._daos.client.array_get_size(self._array))

    def truncate(self, size: int) -> None:
        self._daos._run(
            self._daos.client.array_set_size(self._array, size, pool=self._daos.pool)
        )
