"""A functional + timed simulation of the DAOS object store (§3).

The data model is implemented for real — pools, containers, Key-Value and
Array objects with 128-bit OIDs, object classes with striping, deterministic
placement over targets — so every byte written can be read back and checked.
The *performance* behaviour comes from charging simulated time for RPCs,
per-target service, object serialisation points and bulk data flows over the
:mod:`repro.network` fabric.

Entry points: build a :class:`~repro.daos.system.DaosSystem` over a
:class:`~repro.hardware.topology.Cluster`, create a pool, then drive I/O
through per-process :class:`~repro.daos.client.DaosClient` instances inside
simulation processes.
"""

from repro.daos.errors import (
    DaosError,
    ContainerExistsError,
    ContainerNotFoundError,
    InvalidArgumentError,
    NoSpaceError,
    ObjectNotFoundError,
    KeyNotFoundError,
    SimulatedFaultError,
)
from repro.daos.payload import BytesPayload, PatternPayload, Payload
from repro.daos.oid import ObjectId, OidAllocator
from repro.daos.objclass import OC_S1, OC_S2, OC_S4, OC_SX, ObjectClass, object_class_by_name
from repro.daos.placement import place_object, shard_layout
from repro.daos.kv import KeyValueObject
from repro.daos.array_object import ArrayObject
from repro.daos.container import Container
from repro.daos.pool import Pool
from repro.daos.system import DaosSystem
from repro.daos.client import DaosClient
from repro.daos.dfs import Dfs, DfsStat
from repro.daos.simple import DArray, DDict, SimpleDaos

__all__ = [
    "DaosError",
    "ContainerExistsError",
    "ContainerNotFoundError",
    "InvalidArgumentError",
    "NoSpaceError",
    "ObjectNotFoundError",
    "KeyNotFoundError",
    "SimulatedFaultError",
    "Payload",
    "BytesPayload",
    "PatternPayload",
    "ObjectId",
    "OidAllocator",
    "ObjectClass",
    "OC_S1",
    "OC_S2",
    "OC_S4",
    "OC_SX",
    "object_class_by_name",
    "place_object",
    "shard_layout",
    "KeyValueObject",
    "ArrayObject",
    "Container",
    "Pool",
    "DaosSystem",
    "DaosClient",
    "Dfs",
    "DfsStat",
    "SimpleDaos",
    "DDict",
    "DArray",
]
