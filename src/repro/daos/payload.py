"""Lazy data payloads.

Benchmarks move hundreds of gibibytes of simulated data; materialising those
bytes would dwarf the machine's memory for zero benefit.  A :class:`Payload`
is a value object describing bytes: :class:`BytesPayload` holds them for
real (used in functional tests and the examples), :class:`PatternPayload`
describes a deterministic pseudo-random pattern by ``(size, seed)`` and can
materialise any slice on demand, and :class:`ConcatPayload` is a lazy
concatenation of other payloads (what a multi-extent array read returns),
so stitched-together reads stay O(1) in memory until a caller actually
needs bytes.

Payload equality is *content* equality: a ``BytesPayload`` equals a
``PatternPayload`` that would materialise the same bytes, so verification
code does not care which representation a benchmark used.  Equality and
hashing go through a lazily-computed, cached SHA-256 content digest, which
is streamed chunk-by-chunk — comparing or hashing a 20 MiB lazy payload
never allocates 20 MiB.
"""

from __future__ import annotations

import functools
import hashlib
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Payload", "BytesPayload", "PatternPayload", "ConcatPayload"]

#: Content digests memoised across payload *instances*.  Serving paths build
#: a fresh payload object per request for the same underlying content, so the
#: per-instance digest slot alone never hits; keying by content identity
#: (see ``Payload._memo_key``) makes re-digesting a field O(1) after its
#: first computation.  Values are 32-byte digests; the table is cleared when
#: it grows past the bound rather than LRU-tracked (re-digesting after a
#: clear is correct, just slower once).
_DIGEST_MEMO: Dict[Tuple, bytes] = {}
_DIGEST_MEMO_BOUND = 1 << 16


class Payload(ABC):
    """Immutable description of a byte string."""

    #: Cache slot for the content digest; payloads are immutable, so the
    #: digest is computed at most once per instance.
    __slots__ = ("_digest",)

    @property
    @abstractmethod
    def size(self) -> int:
        """Length in bytes."""

    @abstractmethod
    def slice(self, offset: int, length: int) -> "Payload":
        """Payload for ``[offset, offset+length)``; bounds are validated."""

    @abstractmethod
    def to_bytes(self) -> bytes:
        """Materialise the payload (may allocate ``size`` bytes)."""

    def _chunks(self) -> Iterator[bytes]:
        """Yield the content as a sequence of byte chunks.

        Subclasses with a natural block structure override this so digest
        computation streams in bounded memory instead of materialising the
        whole payload.
        """
        yield self.to_bytes()

    def _memo_key(self) -> Optional[Tuple]:
        """Hashable content identity for the cross-instance digest memo.

        ``None`` opts out of memoisation (the default, and the choice for
        payloads whose key would cost as much memory as the content).
        Distinct keys may map to equal content — the memo then just stores
        the digest twice — but equal keys MUST imply equal content.
        """
        return None

    def content_digest(self) -> bytes:
        """SHA-256 of the materialised content, computed lazily and cached.

        Two payloads of equal content share the digest whatever their
        representation, because every ``_chunks`` implementation streams
        the same byte sequence.
        """
        digest = getattr(self, "_digest", None)
        if digest is None:
            key = self._memo_key()
            if key is not None:
                digest = _DIGEST_MEMO.get(key)
            if digest is None:
                h = hashlib.sha256()
                for chunk in self._chunks():
                    h.update(chunk)
                digest = h.digest()
                if key is not None:
                    if len(_DIGEST_MEMO) >= _DIGEST_MEMO_BOUND:
                        _DIGEST_MEMO.clear()
                    _DIGEST_MEMO[key] = digest
            self._digest = digest
        return digest

    def _check_bounds(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ValueError(
                f"slice [{offset}, {offset + length}) out of bounds for "
                f"payload of {self.size} B"
            )

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Payload):
            return NotImplemented
        if self.size != other.size:
            return False
        return self.content_digest() == other.content_digest()

    def __hash__(self) -> int:
        return hash((self.size, self.content_digest()))


class BytesPayload(Payload):
    """A payload backed by real bytes."""

    __slots__ = ("_data",)

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)

    @property
    def size(self) -> int:
        return len(self._data)

    def _memo_key(self) -> Optional[Tuple]:
        # Small literal payloads (KV values, test fixtures) key by their
        # bytes; beyond that the key would rival the content in size.
        if len(self._data) <= 4096:
            return ("B", self._data)
        return None

    def slice(self, offset: int, length: int) -> "BytesPayload":
        self._check_bounds(offset, length)
        return BytesPayload(self._data[offset : offset + length])

    def to_bytes(self) -> bytes:
        return self._data

    def __repr__(self) -> str:
        preview = self._data[:16]
        return f"<BytesPayload {self.size} B {preview!r}{'...' if self.size > 16 else ''}>"


class PatternPayload(Payload):
    """A payload of deterministic pseudo-random bytes, O(1) in memory.

    The full pattern for ``(seed)`` is an infinite byte stream; an instance
    is a window ``[origin, origin+size)`` into it, so slices remain
    :class:`PatternPayload` without copying.
    """

    __slots__ = ("_size", "seed", "origin")

    #: Pattern blocks are generated in chunks of this many bytes.
    _BLOCK = 1 << 16

    def __init__(self, size: int, seed: int, origin: int = 0) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if origin < 0:
            raise ValueError(f"origin must be non-negative, got {origin}")
        self._size = int(size)
        self.seed = int(seed)
        self.origin = int(origin)

    @property
    def size(self) -> int:
        return self._size

    def _memo_key(self) -> Optional[Tuple]:
        return ("P", self.seed, self.origin, self._size)

    def slice(self, offset: int, length: int) -> "PatternPayload":
        self._check_bounds(offset, length)
        return PatternPayload(length, self.seed, origin=self.origin + offset)

    def _block(self, block: int) -> np.ndarray:
        return _pattern_block(self.seed, block)

    def _chunks(self) -> Iterator[bytes]:
        if self._size == 0:
            return
        first_block = self.origin // self._BLOCK
        last_block = (self.origin + self._size - 1) // self._BLOCK
        for block in range(first_block, last_block + 1):
            data = self._block(block)
            lo = max(self.origin - block * self._BLOCK, 0)
            hi = min(self.origin + self._size - block * self._BLOCK, self._BLOCK)
            yield data[lo:hi].tobytes()

    def to_bytes(self) -> bytes:
        return b"".join(self._chunks())

    def __repr__(self) -> str:
        return f"<PatternPayload {self.size} B seed={self.seed} origin={self.origin}>"


@functools.lru_cache(maxsize=256)
def _pattern_block(seed: int, block: int) -> np.ndarray:
    """One 64 KiB pattern block, LRU-cached across payload instances.

    Pattern bytes are a pure function of ``(seed, block)``; serving
    workloads re-read the same hot fields, so regenerating a PCG64 stream
    per read is the single largest avoidable cost at paper scale.  The
    cached array is frozen — callers only slice and ``tobytes`` it.
    """
    rng = np.random.Generator(
        np.random.PCG64(np.random.SeedSequence(entropy=[seed, block]))
    )
    data = rng.integers(0, 256, size=PatternPayload._BLOCK, dtype=np.uint8)
    data.setflags(write=False)
    return data


class ConcatPayload(Payload):
    """A lazy concatenation of payloads.

    Multi-extent array reads return one of these instead of joining the
    pieces eagerly, so reading a pattern-backed striped file stays O(1) in
    memory.  Slicing selects the covered pieces (slicing them at the edges)
    without materialising anything; nested concatenations are flattened at
    construction so deep read-of-read chains stay shallow.
    """

    __slots__ = ("_pieces", "_size")

    def __init__(self, pieces: Sequence[Payload]) -> None:
        flat: List[Payload] = []
        for piece in pieces:
            if not isinstance(piece, Payload):
                raise TypeError(f"not a Payload: {piece!r}")
            if piece.size == 0:
                continue
            if isinstance(piece, ConcatPayload):
                flat.extend(piece._pieces)
            else:
                flat.append(piece)
        self._pieces = tuple(flat)
        self._size = sum(p.size for p in flat)

    @property
    def size(self) -> int:
        return self._size

    @property
    def pieces(self) -> Sequence[Payload]:
        """The flattened, non-empty constituent payloads."""
        return self._pieces

    def _memo_key(self) -> Optional[Tuple]:
        keys = []
        for piece in self._pieces:
            key = piece._memo_key()
            if key is None:
                return None
            keys.append(key)
        return ("C", tuple(keys))

    def slice(self, offset: int, length: int) -> "Payload":
        self._check_bounds(offset, length)
        if length == 0:
            return BytesPayload(b"")
        picked: List[Payload] = []
        cursor = 0
        end = offset + length
        for piece in self._pieces:
            piece_end = cursor + piece.size
            if piece_end <= offset:
                cursor = piece_end
                continue
            if cursor >= end:
                break
            lo = max(offset - cursor, 0)
            hi = min(end - cursor, piece.size)
            picked.append(piece if (lo == 0 and hi == piece.size) else piece.slice(lo, hi - lo))
            cursor = piece_end
        if len(picked) == 1:
            return picked[0]
        return ConcatPayload(picked)

    def _chunks(self) -> Iterator[bytes]:
        for piece in self._pieces:
            yield from piece._chunks()

    def to_bytes(self) -> bytes:
        return b"".join(self._chunks())

    def __repr__(self) -> str:
        return f"<ConcatPayload {self.size} B in {len(self._pieces)} pieces>"
