"""Lazy data payloads.

Benchmarks move hundreds of gibibytes of simulated data; materialising those
bytes would dwarf the machine's memory for zero benefit.  A :class:`Payload`
is a value object describing bytes: :class:`BytesPayload` holds them for
real (used in functional tests and the examples), while
:class:`PatternPayload` describes a deterministic pseudo-random pattern by
``(size, seed)`` and can materialise any slice on demand.

Payload equality is *content* equality: a ``BytesPayload`` equals a
``PatternPayload`` that would materialise the same bytes, so verification
code does not care which representation a benchmark used.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Payload", "BytesPayload", "PatternPayload"]


class Payload(ABC):
    """Immutable description of a byte string."""

    __slots__ = ()

    @property
    @abstractmethod
    def size(self) -> int:
        """Length in bytes."""

    @abstractmethod
    def slice(self, offset: int, length: int) -> "Payload":
        """Payload for ``[offset, offset+length)``; bounds are validated."""

    @abstractmethod
    def to_bytes(self) -> bytes:
        """Materialise the payload (may allocate ``size`` bytes)."""

    def _check_bounds(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ValueError(
                f"slice [{offset}, {offset + length}) out of bounds for "
                f"payload of {self.size} B"
            )

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Payload):
            return NotImplemented
        if self.size != other.size:
            return False
        return self.to_bytes() == other.to_bytes()

    def __hash__(self) -> int:
        return hash((self.size, self.to_bytes()))


class BytesPayload(Payload):
    """A payload backed by real bytes."""

    __slots__ = ("_data",)

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)

    @property
    def size(self) -> int:
        return len(self._data)

    def slice(self, offset: int, length: int) -> "BytesPayload":
        self._check_bounds(offset, length)
        return BytesPayload(self._data[offset : offset + length])

    def to_bytes(self) -> bytes:
        return self._data

    def __repr__(self) -> str:
        preview = self._data[:16]
        return f"<BytesPayload {self.size} B {preview!r}{'...' if self.size > 16 else ''}>"


class PatternPayload(Payload):
    """A payload of deterministic pseudo-random bytes, O(1) in memory.

    The full pattern for ``(seed)`` is an infinite byte stream; an instance
    is a window ``[origin, origin+size)`` into it, so slices remain
    :class:`PatternPayload` without copying.
    """

    __slots__ = ("_size", "seed", "origin")

    #: Pattern blocks are generated in chunks of this many bytes.
    _BLOCK = 1 << 16

    def __init__(self, size: int, seed: int, origin: int = 0) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if origin < 0:
            raise ValueError(f"origin must be non-negative, got {origin}")
        self._size = int(size)
        self.seed = int(seed)
        self.origin = int(origin)

    @property
    def size(self) -> int:
        return self._size

    def slice(self, offset: int, length: int) -> "PatternPayload":
        self._check_bounds(offset, length)
        return PatternPayload(length, self.seed, origin=self.origin + offset)

    def to_bytes(self) -> bytes:
        if self._size == 0:
            return b""
        first_block = self.origin // self._BLOCK
        last_block = (self.origin + self._size - 1) // self._BLOCK
        parts = []
        for block in range(first_block, last_block + 1):
            rng = np.random.Generator(
                np.random.PCG64(np.random.SeedSequence(entropy=[self.seed, block]))
            )
            parts.append(rng.integers(0, 256, size=self._BLOCK, dtype=np.uint8))
        stream = np.concatenate(parts)
        start = self.origin - first_block * self._BLOCK
        return stream[start : start + self._size].tobytes()

    def __repr__(self) -> str:
        return f"<PatternPayload {self.size} B seed={self.seed} origin={self.origin}>"
