"""Deterministic object placement over pool targets.

Real DAOS places object shards with a pseudorandom algorithm seeded by the
OID over the pool map.  We reproduce the properties that matter for the
benchmarks: placement is a pure function of ``(oid, object class, pool
size)``, shards of a striped object land on distinct targets, and the load
spreads uniformly.  The hash is SHA-256-based so it is stable across Python
processes and versions (``hash()`` is salted and unsuitable).
"""

from __future__ import annotations

import hashlib
from typing import AbstractSet, List, Sequence, Tuple

from repro.daos.errors import InvalidArgumentError
from repro.daos.objclass import ObjectClass
from repro.daos.oid import ObjectId

__all__ = [
    "placement_hash",
    "place_object",
    "engine_span",
    "remap_target",
    "shard_layout",
    "shard_for_offset",
]


def placement_hash(oid: ObjectId, salt: int = 0, container_salt: int = 0) -> int:
    """Stable 64-bit hash of an OID.

    ``salt`` separates replica groups; ``container_salt`` separates the
    placement of identically-numbered OIDs living in *different* containers
    (DAOS object placement hashes over the container handle's pool map view,
    so two containers' first objects do not collide on a target).
    """
    digest = hashlib.sha256(
        oid.hi.to_bytes(8, "little")
        + oid.lo.to_bytes(8, "little")
        + salt.to_bytes(4, "little")
        + (container_salt & ((1 << 64) - 1)).to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest[:8], "little")


def place_object(
    oid: ObjectId,
    oclass: ObjectClass,
    n_targets: int,
    container_salt: int = 0,
    n_groups: int = 1,
) -> List[int]:
    """Target indices for each shard of ``oid`` (length = stripes * replicas).

    Placement follows DAOS's scheme for ``S``-class objects: each container
    gets a hashed origin on the pool map, consecutive OIDs cycle round-robin
    from it, and a striped object's shards occupy consecutive layout slots.
    The cycling matters: objects allocated in sequence (IOR's
    file-per-process arrays, a forecast's field arrays) spread evenly
    instead of colliding binomially, which is what lets the hardware
    saturate.  OIDs that are not sequential (md5-derived ones) still land
    pseudo-uniformly because their user bits are uniform.

    ``n_groups`` interleaves consecutive layout slots across target groups
    (engines): slot v maps to target ``(v % groups) * (targets/groups) +
    v // groups``, so sequential objects — and the shards of one striped
    object — alternate engines the way the DAOS pool map distributes its
    domains.  Replica groups start at independently hashed origins.
    """
    stripes = oclass.resolve_stripes(n_targets)
    if n_groups < 1 or n_targets % n_groups != 0:
        raise ValueError(
            f"n_groups={n_groups} must be >= 1 and divide n_targets={n_targets}"
        )
    per_group = n_targets // n_groups
    replicas = oclass.replicas
    layout: List[int] = []
    if replicas == 1:
        # The paper's classes: plain striping, no distinctness bookkeeping.
        origin = (
            placement_hash(ObjectId(0, 0), salt=0, container_salt=container_salt)
            + oid.lo * stripes
            + oid.user_hi
        ) % n_targets
        for shard in range(stripes):
            slot = (origin + shard) % n_targets
            layout.append((slot % n_groups) * per_group + slot // n_groups)
        return layout
    # Replicated classes: shards must never co-locate — a replica sharing a
    # target with another protects nothing.  Tiny pools where that is
    # impossible are rejected instead of silently degraded.
    if stripes * replicas > n_targets:
        raise InvalidArgumentError(
            f"object class {oclass.name} needs {stripes * replicas} distinct "
            f"targets ({stripes} stripes x {replicas} replicas) but the pool "
            f"has only {n_targets}"
        )
    # For the G1 classes (one shard per replica) additionally spread the
    # replicas over target groups (engines) as evenly as the pool allows —
    # the fault-domain separation that keeps at least one replica alive
    # through a whole-engine loss.  With enough groups this is "one replica
    # per engine"; with fewer groups than replicas the cap still guarantees
    # no single engine holds them all.
    group_cap = -(-replicas // n_groups) if stripes == 1 else None
    used_targets: set = set()
    group_counts: dict = {}
    for replica in range(replicas):
        origin = (
            placement_hash(ObjectId(0, 0), salt=replica, container_salt=container_salt)
            + oid.lo * stripes
            + oid.user_hi
        ) % n_targets
        for shard in range(stripes):
            slot = (origin + shard) % n_targets
            for _probe in range(n_targets):
                target = (slot % n_groups) * per_group + slot // n_groups
                group = target // per_group
                if target not in used_targets and (
                    group_cap is None or group_counts.get(group, 0) < group_cap
                ):
                    break
                slot = (slot + 1) % n_targets
            else:  # pragma: no cover - excluded by the size check above
                raise InvalidArgumentError(
                    f"cannot place {oclass.name} shard on {n_targets} targets"
                )
            used_targets.add(target)
            group_counts[group] = group_counts.get(group, 0) + 1
            layout.append(target)
    return layout


def engine_span(layout: Sequence[int], n_targets: int, n_engines: int) -> int:
    """Number of distinct engines a layout's targets live on.

    Targets are grouped contiguously per engine (``n_targets / n_engines``
    each), matching :meth:`repro.daos.system.DaosSystem.engine_of_target`.
    The serving tier uses this to verify that promoting a hot object to a
    replicated class actually spread its replicas over engines — the whole
    point of the promotion.
    """
    if n_engines < 1 or n_targets % n_engines != 0:
        raise ValueError(
            f"n_engines={n_engines} must be >= 1 and divide n_targets={n_targets}"
        )
    per_engine = n_targets // n_engines
    return len({target // per_engine for target in layout})


def remap_target(
    oid: ObjectId,
    shard_position: int,
    avoid: AbstractSet[int],
    n_targets: int,
) -> int:
    """Deterministic spare target for a displaced shard.

    Used when a layout slot lands on (or loses its data to) an unavailable
    target: the spare is a pure function of the OID and the layout position,
    probed linearly past every target in ``avoid`` (unavailable targets plus
    the rest of the object's layout, so replicas stay distinct).  Raises
    :class:`InvalidArgumentError` when no target remains.
    """
    if len(avoid) >= n_targets:
        raise InvalidArgumentError(
            f"no spare target: all {n_targets} targets avoided for {oid}"
        )
    start = placement_hash(oid, salt=0x5EED + shard_position) % n_targets
    for probe in range(n_targets):
        candidate = (start + probe) % n_targets
        if candidate not in avoid:
            return candidate
    raise InvalidArgumentError(  # pragma: no cover - excluded by len check
        f"no spare target among {n_targets} for {oid}"
    )


def shard_layout(
    size: int, stripes: int, cell_size: int
) -> List[Tuple[int, int, int]]:
    """Split a contiguous extent of ``size`` bytes over ``stripes`` shards.

    Returns ``(shard_index, offset, length)`` triples covering ``[0, size)``:
    data is distributed in round-robin cells of ``cell_size`` bytes, matching
    DAOS array striping.  Lengths per shard are aggregated, since for the
    fluid-flow model only the per-shard byte totals matter.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if stripes < 1:
        raise ValueError(f"stripes must be >= 1, got {stripes}")
    if cell_size < 1:
        raise ValueError(f"cell size must be >= 1, got {cell_size}")
    if size == 0:
        return []
    totals = [0] * stripes
    first_offset = [None] * stripes
    offset = 0
    cell = 0
    while offset < size:
        length = min(cell_size, size - offset)
        shard = cell % stripes
        if first_offset[shard] is None:
            first_offset[shard] = offset
        totals[shard] += length
        offset += length
        cell += 1
    return [
        (shard, first_offset[shard], totals[shard])
        for shard in range(stripes)
        if totals[shard] > 0
    ]


def shard_for_offset(offset: int, stripes: int, cell_size: int) -> int:
    """Shard index holding the byte at ``offset`` under round-robin cells."""
    if offset < 0:
        raise ValueError(f"offset must be non-negative, got {offset}")
    return (offset // cell_size) % stripes


def spread(values: Sequence[int], n_bins: int) -> List[int]:
    """Histogram of ``values`` over ``n_bins`` bins (placement-balance tests)."""
    counts = [0] * n_bins
    for v in values:
        counts[v] += 1
    return counts
