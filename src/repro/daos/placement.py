"""Deterministic object placement over pool targets.

Real DAOS places object shards with a pseudorandom algorithm seeded by the
OID over the pool map.  We reproduce the properties that matter for the
benchmarks: placement is a pure function of ``(oid, object class, pool
size)``, shards of a striped object land on distinct targets, and the load
spreads uniformly.  The hash is SHA-256-based so it is stable across Python
processes and versions (``hash()`` is salted and unsuitable).
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

from repro.daos.objclass import ObjectClass
from repro.daos.oid import ObjectId

__all__ = ["placement_hash", "place_object", "shard_layout", "shard_for_offset"]


def placement_hash(oid: ObjectId, salt: int = 0, container_salt: int = 0) -> int:
    """Stable 64-bit hash of an OID.

    ``salt`` separates replica groups; ``container_salt`` separates the
    placement of identically-numbered OIDs living in *different* containers
    (DAOS object placement hashes over the container handle's pool map view,
    so two containers' first objects do not collide on a target).
    """
    digest = hashlib.sha256(
        oid.hi.to_bytes(8, "little")
        + oid.lo.to_bytes(8, "little")
        + salt.to_bytes(4, "little")
        + (container_salt & ((1 << 64) - 1)).to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest[:8], "little")


def place_object(
    oid: ObjectId,
    oclass: ObjectClass,
    n_targets: int,
    container_salt: int = 0,
    n_groups: int = 1,
) -> List[int]:
    """Target indices for each shard of ``oid`` (length = stripes * replicas).

    Placement follows DAOS's scheme for ``S``-class objects: each container
    gets a hashed origin on the pool map, consecutive OIDs cycle round-robin
    from it, and a striped object's shards occupy consecutive layout slots.
    The cycling matters: objects allocated in sequence (IOR's
    file-per-process arrays, a forecast's field arrays) spread evenly
    instead of colliding binomially, which is what lets the hardware
    saturate.  OIDs that are not sequential (md5-derived ones) still land
    pseudo-uniformly because their user bits are uniform.

    ``n_groups`` interleaves consecutive layout slots across target groups
    (engines): slot v maps to target ``(v % groups) * (targets/groups) +
    v // groups``, so sequential objects — and the shards of one striped
    object — alternate engines the way the DAOS pool map distributes its
    domains.  Replica groups start at independently hashed origins.
    """
    stripes = oclass.resolve_stripes(n_targets)
    if n_groups < 1 or n_targets % n_groups != 0:
        raise ValueError(
            f"n_groups={n_groups} must be >= 1 and divide n_targets={n_targets}"
        )
    per_group = n_targets // n_groups
    layout: List[int] = []
    for replica in range(oclass.replicas):
        origin = (
            placement_hash(ObjectId(0, 0), salt=replica, container_salt=container_salt)
            + oid.lo * stripes
            + oid.user_hi
        ) % n_targets
        for shard in range(stripes):
            slot = (origin + shard) % n_targets
            layout.append((slot % n_groups) * per_group + slot // n_groups)
    return layout


def shard_layout(
    size: int, stripes: int, cell_size: int
) -> List[Tuple[int, int, int]]:
    """Split a contiguous extent of ``size`` bytes over ``stripes`` shards.

    Returns ``(shard_index, offset, length)`` triples covering ``[0, size)``:
    data is distributed in round-robin cells of ``cell_size`` bytes, matching
    DAOS array striping.  Lengths per shard are aggregated, since for the
    fluid-flow model only the per-shard byte totals matter.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if stripes < 1:
        raise ValueError(f"stripes must be >= 1, got {stripes}")
    if cell_size < 1:
        raise ValueError(f"cell size must be >= 1, got {cell_size}")
    if size == 0:
        return []
    totals = [0] * stripes
    first_offset = [None] * stripes
    offset = 0
    cell = 0
    while offset < size:
        length = min(cell_size, size - offset)
        shard = cell % stripes
        if first_offset[shard] is None:
            first_offset[shard] = offset
        totals[shard] += length
        offset += length
        cell += 1
    return [
        (shard, first_offset[shard], totals[shard])
        for shard in range(stripes)
        if totals[shard] > 0
    ]


def shard_for_offset(offset: int, stripes: int, cell_size: int) -> int:
    """Shard index holding the byte at ``offset`` under round-robin cells."""
    if offset < 0:
        raise ValueError(f"offset must be non-negative, got {offset}")
    return (offset // cell_size) % stripes


def spread(values: Sequence[int], n_bins: int) -> List[int]:
    """Histogram of ``values`` over ``n_bins`` bins (placement-balance tests)."""
    counts = [0] * n_bins
    for v in values:
        counts[v] += 1
    return counts
