"""DAOS containers: transactional object namespaces inside a pool (§3).

A container owns a set of objects addressed by OID, an OID allocator, and an
epoch counter.  Containers are created with a UUID; the Field I/O layer
derives container UUIDs from md5 sums of field-key parts so concurrent
creators converge on the same container (§4).
"""

from __future__ import annotations

import uuid as uuid_module
from typing import Dict, Iterator, Union

from repro.daos.array_object import ArrayObject
from repro.daos.errors import InvalidArgumentError, ObjectNotFoundError
from repro.daos.kv import KeyValueObject
from repro.daos.objclass import ObjectClass
from repro.daos.oid import ObjectId, OidAllocator

__all__ = ["Container"]

DaosObject = Union[KeyValueObject, ArrayObject]


class Container:
    """One container: an object namespace with its own transaction history."""

    def __init__(self, uuid: uuid_module.UUID, label: str = "", is_default: bool = False):
        self.uuid = uuid
        self.label = label
        #: The pool's default/root container: ops here skip the per-container
        #: pool-service touch (see DaosServiceConfig.container_touch_service_time).
        self.is_default = is_default
        self.oid_allocator = OidAllocator()
        self._objects: Dict[ObjectId, DaosObject] = {}
        #: Highest committed epoch; bumped on every object mutation.
        self.epoch = 0
        self.open_handles = 0

    # -- objects ---------------------------------------------------------------
    def add_object(self, obj: DaosObject) -> DaosObject:
        """Register a freshly created object; OID must be unused."""
        if obj.oid in self._objects:
            raise InvalidArgumentError(f"object {obj.oid} already exists in container")
        self._objects[obj.oid] = obj
        self.epoch += 1
        return obj

    def get_object(self, oid: ObjectId) -> DaosObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise ObjectNotFoundError(
                f"object {oid} not found in container {self.uuid}"
            ) from None

    def get_or_create_kv(self, oid: ObjectId, oclass: ObjectClass) -> KeyValueObject:
        """KV open-with-create semantics (DAOS KVs materialise on first use)."""
        obj = self._objects.get(oid)
        if obj is None:
            obj = KeyValueObject(oid, oclass)
            self.add_object(obj)
        elif not isinstance(obj, KeyValueObject):
            raise InvalidArgumentError(f"object {oid} exists but is not a KV")
        return obj

    def get_or_create_array(self, oid: ObjectId, oclass: ObjectClass) -> ArrayObject:
        """Array open-with-create semantics."""
        obj = self._objects.get(oid)
        if obj is None:
            obj = ArrayObject(oid, oclass)
            self.add_object(obj)
        elif not isinstance(obj, ArrayObject):
            raise InvalidArgumentError(f"object {oid} exists but is not an Array")
        return obj

    def remove_object(self, oid: ObjectId) -> DaosObject:
        """Drop an object from the namespace (punch); returns it."""
        try:
            obj = self._objects.pop(oid)
        except KeyError:
            raise ObjectNotFoundError(
                f"object {oid} not found in container {self.uuid}"
            ) from None
        self.epoch += 1
        return obj

    def has_object(self, oid: ObjectId) -> bool:
        return oid in self._objects

    def objects(self) -> Iterator[DaosObject]:
        return iter(self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.label or str(self.uuid)[:8]
        return f"<Container {tag} {len(self._objects)} objects epoch={self.epoch}>"
