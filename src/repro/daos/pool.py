"""DAOS pools: reserved storage spread over targets (§3).

A pool spans every target of every deployed engine, tracks SCM space usage
against the per-socket :class:`~repro.hardware.scm.ScmRegion` budgets, and
owns the containers.  Container create/open is brokered by the pool service
(a serial metadata authority) — the timing for that lives in the client;
this class holds the state and enforces the invariants (unique labels and
UUIDs, capacity).
"""

from __future__ import annotations

import uuid as uuid_module
from typing import Dict, List, Optional

from repro.daos.container import Container
from repro.daos.errors import (
    ContainerExistsError,
    ContainerNotFoundError,
    NoSpaceError,
)

__all__ = ["Pool"]


class Pool:
    """A pool over ``n_targets`` targets with byte-accurate space accounting."""

    def __init__(
        self,
        uuid: uuid_module.UUID,
        label: str,
        n_targets: int,
        scm_bytes_per_target: int,
    ) -> None:
        if n_targets < 1:
            raise ValueError(f"pool needs >= 1 target, got {n_targets}")
        if scm_bytes_per_target <= 0:
            raise ValueError("per-target SCM reservation must be positive")
        self.uuid = uuid
        self.label = label
        self.n_targets = n_targets
        self.scm_bytes_per_target = scm_bytes_per_target
        self._used_per_target: List[int] = [0] * n_targets
        # Running total kept in lockstep with the per-target list so that
        # ``used``/``free`` are O(1) — they sit on the hot write path (every
        # charge consults ``free`` indirectly via NoSpace decisions and the
        # benchmarks poll them per-op).
        self._used_total = 0
        self._containers_by_uuid: Dict[uuid_module.UUID, Container] = {}
        self._containers_by_label: Dict[str, Container] = {}
        self._container_counter = 0

    # -- capacity ---------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.n_targets * self.scm_bytes_per_target

    @property
    def used(self) -> int:
        return self._used_total

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def target_used(self, target_index: int) -> int:
        return self._used_per_target[target_index]

    def charge(self, target_index: int, nbytes: int) -> None:
        """Account ``nbytes`` written to a target; raises when full.

        DAOS fails I/O when the *target* holding the shard is out of space,
        not when the pool average is — uneven placement can surface
        NoSpace early, which the capacity tests exercise.
        """
        if nbytes < 0:
            raise ValueError(f"charge must be non-negative, got {nbytes}")
        used = self._used_per_target[target_index]
        if used + nbytes > self.scm_bytes_per_target:
            raise NoSpaceError(
                f"target {target_index} full: {used} + {nbytes} > "
                f"{self.scm_bytes_per_target} B"
            )
        self._used_per_target[target_index] = used + nbytes
        self._used_total += nbytes

    def refund(self, target_index: int, nbytes: int) -> None:
        """Return space on a target (object punch / container destroy)."""
        if nbytes < 0:
            raise ValueError(f"refund must be non-negative, got {nbytes}")
        if nbytes > self._used_per_target[target_index]:
            raise ValueError("refunding more than is in use on target")
        self._used_per_target[target_index] -= nbytes
        self._used_total -= nbytes

    # -- containers ---------------------------------------------------------------
    def create_container(
        self,
        uuid: Optional[uuid_module.UUID] = None,
        label: str = "",
        is_default: bool = False,
    ) -> Container:
        """Create a container; raises :class:`ContainerExistsError` on clash.

        Concurrent creators that derive the same UUID from an md5 of the key
        (§4) race here: exactly one wins, the rest observe the error and
        open the existing container instead.

        Anonymous containers get UUIDs derived from the pool identity and a
        counter, keeping whole simulation runs reproducible from the seed.
        """
        if uuid is None:
            self._container_counter += 1
            uuid = uuid_module.uuid5(
                self.uuid, f"container/{self._container_counter}"
            )
        if uuid in self._containers_by_uuid:
            raise ContainerExistsError(f"container {uuid} already exists")
        if label and label in self._containers_by_label:
            raise ContainerExistsError(f"container label {label!r} already exists")
        container = Container(uuid, label=label, is_default=is_default)
        self._containers_by_uuid[uuid] = container
        if label:
            self._containers_by_label[label] = container
        return container

    def open_container(self, ref) -> Container:
        """Open by UUID or label; raises :class:`ContainerNotFoundError`."""
        if isinstance(ref, uuid_module.UUID):
            container = self._containers_by_uuid.get(ref)
        else:
            container = self._containers_by_label.get(str(ref))
        if container is None:
            raise ContainerNotFoundError(f"container {ref!r} not found")
        container.open_handles += 1
        return container

    def destroy_container(self, ref) -> Container:
        """Remove a container from the pool namespace and return it.

        Raises :class:`ContainerNotFoundError` when absent.  Space release
        is the caller's job (the client op refunds each object's stored
        bytes against its layout, mirroring ``array_punch``), because byte
        accounting per target needs the striping configuration the pool does
        not hold.
        """
        if isinstance(ref, uuid_module.UUID):
            container = self._containers_by_uuid.get(ref)
        else:
            container = self._containers_by_label.get(str(ref))
        if container is None:
            raise ContainerNotFoundError(f"container {ref!r} not found")
        del self._containers_by_uuid[container.uuid]
        if container.label:
            del self._containers_by_label[container.label]
        return container

    def has_container(self, ref) -> bool:
        if isinstance(ref, uuid_module.UUID):
            return ref in self._containers_by_uuid
        return str(ref) in self._containers_by_label

    def containers(self):
        """Iterate all containers (rebuild scans, accounting tests)."""
        return iter(self._containers_by_uuid.values())

    @property
    def n_containers(self) -> int:
        return len(self._containers_by_uuid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Pool {self.label!r} {self.n_targets} targets, "
            f"{self.used}/{self.capacity} B, {self.n_containers} containers>"
        )
