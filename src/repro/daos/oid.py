"""128-bit DAOS object identifiers.

DAOS object IDs are 128 bits, of which 96 are user-managed; DAOS reserves
the top 32 bits of the high word to encode, among other things, the object
class (§3).  :class:`ObjectId` reproduces that layout; an
:class:`OidAllocator` hands out unique user parts the way
``daos_obj_generate_oid`` does per container.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.daos.errors import InvalidArgumentError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.daos.objclass import ObjectClass

__all__ = ["ObjectId", "OidAllocator"]

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1


@dataclass(frozen=True, order=True)
class ObjectId:
    """An immutable 128-bit object id: ``hi`` and ``lo`` 64-bit words.

    The top 32 bits of ``hi`` are DAOS-reserved (they carry the object-class
    id); the remaining 96 bits (``hi`` low word + all of ``lo``) belong to
    the user.
    """

    hi: int
    lo: int

    def __post_init__(self) -> None:
        if not (0 <= self.hi <= _U64 and 0 <= self.lo <= _U64):
            raise InvalidArgumentError(
                f"object id words must be unsigned 64-bit, got hi={self.hi} lo={self.lo}"
            )

    @classmethod
    def from_user(cls, user_hi32: int, user_lo64: int, oclass_id: int = 0) -> "ObjectId":
        """Build an OID from the 96 user bits plus an object-class id."""
        if not 0 <= user_hi32 <= _U32:
            raise InvalidArgumentError(f"user high bits exceed 32 bits: {user_hi32}")
        if not 0 <= user_lo64 <= _U64:
            raise InvalidArgumentError(f"user low bits exceed 64 bits: {user_lo64}")
        if not 0 <= oclass_id <= _U32:
            raise InvalidArgumentError(f"object class id exceeds 32 bits: {oclass_id}")
        return cls(hi=(oclass_id << 32) | user_hi32, lo=user_lo64)

    @property
    def oclass_id(self) -> int:
        """The DAOS-reserved object-class id bits."""
        return (self.hi >> 32) & _U32

    @property
    def user_hi(self) -> int:
        """The user-managed 32 bits of the high word."""
        return self.hi & _U32

    def with_class(self, oclass: "ObjectClass") -> "ObjectId":
        """This OID with its reserved bits set for ``oclass``."""
        return ObjectId(hi=(oclass.class_id << 32) | self.user_hi, lo=self.lo)

    def __int__(self) -> int:
        return (self.hi << 64) | self.lo

    def __str__(self) -> str:
        return f"{self.hi:016x}.{self.lo:016x}"

    @classmethod
    def from_digest(cls, digest: bytes, oclass_id: int = 0) -> "ObjectId":
        """Derive the 96 user bits from a digest (e.g. an md5 of a field key).

        Used by the *no index* Field I/O mode, which maps field identifiers
        directly to array OIDs via md5 (§5.2).
        """
        if len(digest) < 12:
            raise InvalidArgumentError("digest must supply at least 12 bytes")
        user_hi = int.from_bytes(digest[:4], "big")
        user_lo = int.from_bytes(digest[4:12], "big")
        return cls.from_user(user_hi, user_lo, oclass_id)


class OidAllocator:
    """Per-container allocator of unique user OID parts.

    Real DAOS reserves ranges of OIDs per client; uniqueness is what matters
    here, so a simple counter suffices and stays deterministic.
    """

    def __init__(self) -> None:
        self._next = 1

    def allocate(self, oclass_id: int = 0) -> ObjectId:
        """Return a fresh OID whose user bits were never handed out before."""
        value = self._next
        self._next += 1
        return ObjectId.from_user(
            user_hi32=(value >> 64) & _U32, user_lo64=value & _U64, oclass_id=oclass_id
        )
