"""Functional state of a DAOS Key-Value object.

Keys and values are byte strings, as in the DAOS KV API.  Timing (RPC
latency, service time, the per-object serialisation of updates) is charged
by :class:`~repro.daos.client.DaosClient`; this class is the pure data
structure plus the bookkeeping the client needs (placement class, a
serialisation lock, usage counters).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.daos.errors import InvalidArgumentError, KeyNotFoundError
from repro.daos.objclass import ObjectClass
from repro.daos.oid import ObjectId

__all__ = ["KeyValueObject"]


class KeyValueObject:
    """An open-addressed mapping of byte keys to byte values."""

    def __init__(self, oid: ObjectId, oclass: ObjectClass) -> None:
        self.oid = oid
        self.oclass = oclass
        self._data: Dict[bytes, bytes] = {}
        #: Set by the system layer: per-object serialisation lock and the
        #: targets holding the object's dkeys.
        self.lock = None
        self.layout: List[int] = []
        #: Monotonic update counter (a stand-in for the object's epoch).
        self.version = 0

    @staticmethod
    def _check_key(key: bytes) -> bytes:
        if not isinstance(key, (bytes, bytearray)):
            raise InvalidArgumentError(f"KV keys must be bytes, got {type(key).__name__}")
        if len(key) == 0:
            raise InvalidArgumentError("KV keys must be non-empty")
        return bytes(key)

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        key = self._check_key(key)
        if not isinstance(value, (bytes, bytearray)):
            raise InvalidArgumentError(
                f"KV values must be bytes, got {type(value).__name__}"
            )
        self._data[key] = bytes(value)
        self.version += 1

    def get(self, key: bytes) -> bytes:
        """Value for ``key``; raises :class:`KeyNotFoundError` if absent."""
        key = self._check_key(key)
        try:
            return self._data[key]
        except KeyError:
            raise KeyNotFoundError(f"key {key!r} not found") from None

    def get_or_none(self, key: bytes) -> Optional[bytes]:
        """Value for ``key`` or ``None`` — the probe used by Algorithm 1."""
        return self._data.get(self._check_key(key))

    def remove(self, key: bytes) -> None:
        """Delete ``key``; raises :class:`KeyNotFoundError` if absent."""
        key = self._check_key(key)
        if key not in self._data:
            raise KeyNotFoundError(f"key {key!r} not found")
        del self._data[key]
        self.version += 1

    def contains(self, key: bytes) -> bool:
        return self._check_key(key) in self._data

    def keys(self) -> Iterator[bytes]:
        """Iterate keys in insertion order (dict semantics)."""
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    @property
    def nbytes(self) -> int:
        """Approximate stored size: keys plus values."""
        return sum(len(k) + len(v) for k, v in self._data.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KeyValueObject {self.oid} {len(self._data)} keys ({self.oclass})>"
