"""Pool health: the versioned pool map and the engine-failure monitor.

Real DAOS maintains a *pool map* — a versioned description of every target's
health — replicated to clients and bumped on each state transition.  Clients
stamp I/O with the map version they hold; a server that has moved on rejects
the RPC and the client refetches the map before retrying.  This module
models that machinery:

* :class:`TargetState` / :class:`PoolMap` — per-target UP / DOWN /
  REBUILDING / EXCLUDED states with a monotonically increasing version;
* :class:`PoolMapView` — the immutable snapshot a client caches;
* :func:`health_monitor` — the background process applying a deterministic
  :class:`~repro.config.EngineFailureEvent` schedule (engine loss and
  reintegration) and kicking the rebuild service;
* :func:`seeded_failure_schedule` — derive a reproducible schedule from a
  seed, so "random" failures replay identically across runs.

The state machine per target follows real rebuild closely enough for the
benchmarks: UP --fail--> DOWN --rebuild starts--> REBUILDING --rebuild
done--> EXCLUDED --reintegrate--> UP.  Every transition bumps the map
version exactly once per event, however many targets it covers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, FrozenSet, Iterable, List, Optional, Tuple

from repro.config import EngineFailureEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.daos.system import DaosSystem

__all__ = [
    "TargetState",
    "PoolMap",
    "PoolMapView",
    "health_monitor",
    "seeded_failure_schedule",
]


class TargetState(Enum):
    """Health of one pool target (mirrors DAOS pool-map component states)."""

    UP = "up"
    DOWN = "down"
    REBUILDING = "rebuilding"
    EXCLUDED = "excluded"

    @property
    def available(self) -> bool:
        """Whether the target can service I/O in this state."""
        return self is TargetState.UP


@dataclass(frozen=True)
class PoolMapView:
    """The immutable pool-map snapshot a client caches.

    ``unavailable`` is every target not currently UP; clients route reads to
    surviving replicas and skip down replicas on write using exactly this
    set, and compare ``version`` against the authoritative map to decide
    whether a refresh can help after a :class:`~repro.daos.errors.TargetDownError`.
    """

    version: int
    unavailable: FrozenSet[int]

    def is_up(self, target_index: int) -> bool:
        return target_index not in self.unavailable


#: The view held by clients of a health-disabled system: version 1, all up.
HEALTHY_VIEW = PoolMapView(version=1, unavailable=frozenset())


class PoolMap:
    """Versioned per-target health states (the authoritative server copy)."""

    def __init__(self, n_targets: int) -> None:
        if n_targets < 1:
            raise ValueError(f"pool map needs >= 1 target, got {n_targets}")
        self.n_targets = n_targets
        self.version = 1
        self._states: List[TargetState] = [TargetState.UP] * n_targets
        self._view: Optional[PoolMapView] = PoolMapView(1, frozenset())

    def state(self, target_index: int) -> TargetState:
        return self._states[target_index]

    def is_up(self, target_index: int) -> bool:
        return self._states[target_index] is TargetState.UP

    @property
    def unavailable(self) -> FrozenSet[int]:
        """Targets that cannot service I/O (anything not UP)."""
        return self.snapshot().unavailable

    def snapshot(self) -> PoolMapView:
        """The current immutable view (cached between version bumps)."""
        view = self._view
        if view is None:
            self._view = view = PoolMapView(
                self.version,
                frozenset(
                    i
                    for i, state in enumerate(self._states)
                    if state is not TargetState.UP
                ),
            )
        return view

    def set_state(self, targets: Iterable[int], state: TargetState) -> int:
        """Transition ``targets`` to ``state``; one version bump per call.

        Returns the new map version.  No-op transitions still bump the
        version — real pool-map updates are events, not diffs.
        """
        for target in targets:
            self._states[target] = state
        self.version += 1
        self._view = None
        return self.version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        down = [i for i, s in enumerate(self._states) if s is not TargetState.UP]
        return f"<PoolMap v{self.version} {self.n_targets} targets, not-up={down}>"


def seeded_failure_schedule(
    seed: int,
    n_engines: int,
    n_failures: int = 1,
    window: Tuple[float, float] = (0.0, 1.0),
    reintegrate_after: Optional[float] = None,
) -> Tuple[EngineFailureEvent, ...]:
    """Derive a deterministic failure schedule from a seed.

    Failure times land uniformly in ``window`` and engines are picked
    without repetition (until every engine has failed once) — both via
    SHA-256 over the seed, so the schedule is independent of every other
    random stream and replays identically across processes.  When
    ``reintegrate_after`` is given, each failed engine comes back that many
    seconds after its failure.
    """
    if n_engines < 1:
        raise ValueError("need at least one engine")
    if n_failures < 0:
        raise ValueError("n_failures must be non-negative")
    lo, hi = window
    if hi < lo:
        raise ValueError(f"window must be ordered, got {window}")
    events: List[EngineFailureEvent] = []
    failed: List[int] = []
    for index in range(n_failures):
        digest = hashlib.sha256(f"health/{seed}/{index}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "little") / float(1 << 64)
        at = lo + fraction * (hi - lo)
        candidates = [e for e in range(n_engines) if e not in failed] or list(
            range(n_engines)
        )
        engine = candidates[int.from_bytes(digest[8:16], "little") % len(candidates)]
        failed.append(engine)
        events.append(EngineFailureEvent(at=at, engine=engine, kind="fail"))
        if reintegrate_after is not None:
            events.append(
                EngineFailureEvent(
                    at=at + reintegrate_after, engine=engine, kind="reintegrate"
                )
            )
    events.sort(key=lambda e: (e.at, e.engine, e.kind))
    return tuple(events)


def health_monitor(system: "DaosSystem"):
    """The background process applying the failure schedule.

    Drives each :class:`~repro.config.EngineFailureEvent` at its scheduled
    time (relative to when the schedule was armed): engine failure marks the
    engine's targets DOWN, bumps the map version, and hands the down set to
    the rebuild service; reintegration brings the targets back UP.  All
    transitions are trace-recorded so ``--trace-out`` runs show the health
    timeline alongside the RPC spans.
    """
    sim = system.cluster.sim
    armed_at = sim.now
    for event in sorted(system.config.health.events, key=lambda e: (e.at, e.engine)):
        due = armed_at + event.at
        if due > sim.now:
            yield sim.timeout(due - sim.now)
        if event.engine >= len(system.engines):
            raise ValueError(
                f"failure schedule names engine {event.engine}, but the "
                f"deployment has {len(system.engines)}"
            )
        engine = system.engines[event.engine]
        targets = [target.global_index for target in engine.targets]
        if event.kind == "fail":
            engine.fail()
            version = system.pool_map.set_state(targets, TargetState.DOWN)
            sim.record(
                "engine_fail",
                engine=event.engine,
                targets=targets,
                map_version=version,
            )
            if system.rebuild is not None:
                system.rebuild.on_engine_failure(event.engine, targets)
        else:
            engine.reintegrate()
            version = system.pool_map.set_state(targets, TargetState.UP)
            sim.record(
                "engine_reintegrate",
                engine=event.engine,
                targets=targets,
                map_version=version,
            )
