"""Background rebuild: re-replicating data lost with a failed engine.

When the health monitor marks an engine's targets DOWN, the
:class:`RebuildService` starts one rebuild run: it scans every pool for
replicated objects with shards on the lost targets, and re-replicates each
affected shard from a surviving replica onto a deterministically chosen
spare target (:func:`~repro.daos.placement.remap_target`).  The copies are
real flows on the fabric's :meth:`~repro.network.fabric.Fabric.rebuild_path`
— source SCM/engine-tx, the switch rails, destination engine-rx/SCM with
write amplification — so rebuild traffic *visibly competes* with concurrent
client I/O, which is the effect the ``rebuild`` experiment measures.

Concurrency is throttled to ``HealthConfig.rebuild_max_inflight`` parallel
shard moves (real DAOS similarly bounds rebuild ULTs so rebuild does not
starve foreground I/O completely).  Objects with *no* surviving replica
(non-replicated classes, or replica counts the failure overwhelmed) are
counted as lost and left pointing at the dead target, so reads keep raising
:class:`~repro.daos.errors.TargetDownError` — the model never silently
resurrects data.

State machine driven here: DOWN --run starts--> REBUILDING --run done-->
EXCLUDED (each a pool-map version bump).  Reintegration while a run is in
flight wins: targets back UP are not demoted to EXCLUDED.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.daos.array_object import ArrayObject
from repro.daos.health import TargetState
from repro.daos.placement import remap_target, shard_layout
from repro.simulation.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.daos.pool import Pool
    from repro.daos.system import DaosSystem

__all__ = ["ShardMove", "RebuildRun", "RebuildService"]


@dataclass
class ShardMove:
    """One planned shard re-replication."""

    pool: "Pool"
    obj: object
    position: int  # index into obj.layout being re-homed
    src_target: int  # surviving replica the data is read from
    dst_target: int  # spare target the data is written to
    nbytes: int


@dataclass
class RebuildRun:
    """Stats of one engine-failure rebuild (what the experiment reports)."""

    engine: int
    targets: Tuple[int, ...]
    started: float
    completed: Optional[float] = None
    objects_scanned: int = 0
    shards_rebuilt: int = 0
    bytes_moved: int = 0
    objects_lost: int = 0
    shards_lost: int = 0

    @property
    def duration(self) -> Optional[float]:
        if self.completed is None:
            return None
        return self.completed - self.started


class RebuildService:
    """Owns rebuild runs and the shared in-flight throttle."""

    def __init__(self, system: "DaosSystem") -> None:
        self.system = system
        self.sim = system.cluster.sim
        self._inflight = Resource(
            self.sim,
            capacity=system.config.health.rebuild_max_inflight,
            name="rebuild_inflight",
        )
        self.runs: List[RebuildRun] = []

    # -- entry point (called by the health monitor) ----------------------------
    def on_engine_failure(self, engine_index: int, targets: Sequence[int]) -> RebuildRun:
        """Kick off a rebuild run for a freshly failed engine."""
        run = RebuildRun(
            engine=engine_index, targets=tuple(targets), started=self.sim.now
        )
        self.runs.append(run)
        self.sim.process(self._rebuild(run), name=f"rebuild:engine{engine_index}")
        return run

    # -- planning ---------------------------------------------------------------
    def _shard_bytes(self, obj, stripes: int) -> List[int]:
        """Stored bytes per shard index (length ``stripes``)."""
        if isinstance(obj, ArrayObject):
            totals = [0] * stripes
            for shard, _offset, length in shard_layout(
                obj.nbytes_stored, stripes, self.system.config.stripe_cell_size
            ):
                totals[shard] = length
            return totals
        # KV objects: G1 classes have stripes == 1, so every replica target
        # holds the whole object; striped KVs split evenly (approximation —
        # per-dkey placement history is not worth carrying for rebuild).
        nbytes = obj.nbytes
        return [nbytes // stripes] * stripes

    def _plan(self, run: RebuildRun, affected: frozenset) -> List[ShardMove]:
        """Scan all pools for shards living on the failed targets."""
        pool_map = self.system.pool_map
        n_targets = self.system.n_targets
        moves: List[ShardMove] = []
        for pool in self.system.pools.values():
            for container in pool.containers():
                for obj in container.objects():
                    hit = [
                        position
                        for position, target in enumerate(obj.layout)
                        if target in affected
                    ]
                    run.objects_scanned += 1
                    if not hit:
                        continue
                    replicas = obj.oclass.replicas
                    stripes = len(obj.layout) // replicas
                    per_shard = self._shard_bytes(obj, stripes)
                    lost_here = 0
                    for position in hit:
                        shard = position % stripes
                        survivors = [
                            obj.layout[replica * stripes + shard]
                            for replica in range(replicas)
                            if replica * stripes + shard != position
                            and pool_map.is_up(obj.layout[replica * stripes + shard])
                        ]
                        if not survivors:
                            lost_here += 1
                            continue
                        dst = remap_target(
                            obj.oid,
                            position,
                            avoid=pool_map.unavailable | set(obj.layout),
                            n_targets=n_targets,
                        )
                        moves.append(
                            ShardMove(
                                pool=pool,
                                obj=obj,
                                position=position,
                                src_target=survivors[0],
                                dst_target=dst,
                                nbytes=per_shard[shard],
                            )
                        )
                    if lost_here:
                        run.objects_lost += 1
                        run.shards_lost += lost_here
        return moves

    # -- execution ---------------------------------------------------------------
    def _move_shard(self, run: RebuildRun, move: ShardMove):
        """One throttled shard copy: flow on the rebuild path, then bookkeeping."""
        slot = self._inflight.request()
        yield slot
        try:
            if move.nbytes > 0:
                src_engine = self.system.engine_of_target(move.src_target)
                dst_engine = self.system.engine_of_target(move.dst_target)
                yield self.system.cluster.net.transfer(
                    self.system.cluster.fabric.rebuild_path(src_engine, dst_engine),
                    move.nbytes,
                    name=f"rebuild:{move.obj.oid}/{move.position}",
                )
        finally:
            self._inflight.release(slot)
        # The shard is re-protected only once the copy lands: update the
        # layout and move the space accounting from the dead target to the
        # spare (clamped, like every refund against approximate placement).
        lost_target = move.obj.layout[move.position]
        move.obj.layout[move.position] = move.dst_target
        if move.nbytes > 0:
            move.pool.refund(
                lost_target, min(move.nbytes, move.pool.target_used(lost_target))
            )
            move.pool.charge(move.dst_target, move.nbytes)
        run.shards_rebuilt += 1
        run.bytes_moved += move.nbytes

    def _rebuild(self, run: RebuildRun):
        """The rebuild run: DOWN -> REBUILDING, copy everything, -> EXCLUDED."""
        sim = self.sim
        pool_map = self.system.pool_map
        affected = frozenset(
            t for t in run.targets if pool_map.state(t) is TargetState.DOWN
        )
        if not affected:
            run.completed = sim.now
            return
        version = pool_map.set_state(affected, TargetState.REBUILDING)
        moves = self._plan(run, affected)
        sim.record(
            "rebuild_start",
            engine=run.engine,
            map_version=version,
            shards=len(moves),
            bytes=sum(m.nbytes for m in moves),
        )
        workers = [
            sim.process(
                self._move_shard(run, move),
                name=f"rebuild:engine{run.engine}/{i}",
            )
            for i, move in enumerate(moves)
        ]
        if workers:
            yield sim.all_of(workers)
        # Targets reintegrated mid-run are back UP; do not demote them.
        still_rebuilding = [
            t for t in affected if pool_map.state(t) is TargetState.REBUILDING
        ]
        if still_rebuilding:
            version = pool_map.set_state(still_rebuilding, TargetState.EXCLUDED)
        run.completed = sim.now
        sim.record(
            "rebuild_done",
            engine=run.engine,
            map_version=version,
            shards_rebuilt=run.shards_rebuilt,
            bytes_moved=run.bytes_moved,
            shards_lost=run.shards_lost,
            duration=run.duration,
        )
