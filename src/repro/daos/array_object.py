"""Functional state of a DAOS Array object.

A DAOS array is a sparse, byte-addressable object.  We store it as a sorted
list of non-overlapping extents, each carrying a :class:`~repro.daos.payload.Payload`
— newest write wins on overlap, reads of holes fail (the Field I/O layer
never reads unwritten ranges; exposing the hole as an error catches bugs).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional

from repro.daos.errors import InvalidArgumentError, ObjectNotFoundError
from repro.daos.objclass import ObjectClass
from repro.daos.oid import ObjectId
from repro.daos.payload import BytesPayload, ConcatPayload, Payload

__all__ = ["Extent", "ArrayObject"]


@dataclass
class Extent:
    """A written range ``[offset, offset + payload.size)``."""

    offset: int
    payload: Payload

    @property
    def end(self) -> int:
        return self.offset + self.payload.size


class ArrayObject:
    """Sparse byte array built from non-overlapping extents."""

    def __init__(self, oid: ObjectId, oclass: ObjectClass) -> None:
        self.oid = oid
        self.oclass = oclass
        self._extents: List[Extent] = []  # sorted by offset, non-overlapping
        #: Set by the system layer (like for KV objects).
        self.lock = None
        self.layout: List[int] = []
        self.version = 0

    # -- write ----------------------------------------------------------------
    def write(self, offset: int, payload: Payload) -> None:
        """Write ``payload`` at ``offset``, replacing any overlapped data."""
        if offset < 0:
            raise InvalidArgumentError(f"offset must be non-negative, got {offset}")
        if not isinstance(payload, Payload):
            payload = BytesPayload(bytes(payload))
        if payload.size == 0:
            return
        new = Extent(offset, payload)
        kept: List[Extent] = []
        for ext in self._extents:
            if ext.end <= new.offset or ext.offset >= new.end:
                kept.append(ext)
                continue
            # Overlap: keep the non-overlapped head and/or tail pieces.
            if ext.offset < new.offset:
                head_len = new.offset - ext.offset
                kept.append(Extent(ext.offset, ext.payload.slice(0, head_len)))
            if ext.end > new.end:
                tail_start = new.end - ext.offset
                kept.append(
                    Extent(new.end, ext.payload.slice(tail_start, ext.end - new.end))
                )
        kept.append(new)
        kept.sort(key=lambda e: e.offset)
        self._extents = kept
        self.version += 1

    # -- read -----------------------------------------------------------------
    def read(self, offset: int, length: int) -> Payload:
        """Payload for ``[offset, offset+length)``.

        Raises :class:`ObjectNotFoundError` if any byte of the range was
        never written (reading a hole).
        """
        if offset < 0 or length < 0:
            raise InvalidArgumentError("offset and length must be non-negative")
        if length == 0:
            return BytesPayload(b"")
        pieces: List[Payload] = []
        cursor = offset
        end = offset + length
        starts = [e.offset for e in self._extents]
        idx = bisect.bisect_right(starts, cursor) - 1
        if idx < 0:
            idx = 0
        for ext in self._extents[idx:]:
            if ext.end <= cursor:
                continue
            if ext.offset >= end:
                break
            if ext.offset > cursor:
                raise ObjectNotFoundError(
                    f"read of unwritten range [{cursor}, {ext.offset}) in array {self.oid}"
                )
            start_in_ext = cursor - ext.offset
            take = min(ext.end, end) - cursor
            pieces.append(ext.payload.slice(start_in_ext, take))
            cursor += take
            if cursor >= end:
                break
        if cursor < end:
            raise ObjectNotFoundError(
                f"read of unwritten range [{cursor}, {end}) in array {self.oid}"
            )
        if len(pieces) == 1:
            return pieces[0]
        # Lazy concatenation: a striped / multi-extent read stays O(1) in
        # memory until a caller actually materialises the bytes.
        return ConcatPayload(pieces)

    def truncate(self, size: int) -> None:
        """Discard all data at or beyond ``size`` (DAOS ``array_set_size``)."""
        if size < 0:
            raise InvalidArgumentError(f"size must be non-negative, got {size}")
        kept: List[Extent] = []
        for ext in self._extents:
            if ext.end <= size:
                kept.append(ext)
            elif ext.offset < size:
                kept.append(Extent(ext.offset, ext.payload.slice(0, size - ext.offset)))
        self._extents = kept
        self.version += 1

    # -- inspection -------------------------------------------------------------
    @property
    def size(self) -> int:
        """Array size: one past the highest written byte (0 if empty)."""
        return self._extents[-1].end if self._extents else 0

    @property
    def nbytes_stored(self) -> int:
        """Bytes currently stored (excluding holes)."""
        return sum(e.payload.size for e in self._extents)

    @property
    def n_extents(self) -> int:
        return len(self._extents)

    def extent_at(self, offset: int) -> Optional[Extent]:
        """The extent containing ``offset``, if any."""
        for ext in self._extents:
            if ext.offset <= offset < ext.end:
                return ext
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ArrayObject {self.oid} size={self.size} "
            f"extents={len(self._extents)} ({self.oclass})>"
        )
