"""The explicit RPC layer of the DAOS client: requests, completions, middleware.

Every :class:`~repro.daos.client.DaosClient` operation is materialised as a
:class:`Request` — op kind, target, payload size, and a *re-invocable* body
generator — and submitted through a chain of :class:`Middleware` objects
before the body runs.  This mirrors the request pipeline of the real DAOS
client library (``daos_rpc``/CaRT), where every API call builds an RPC
descriptor that passes through registered callbacks on its way to the wire.

The middleware chain is where cross-cutting concerns live:

* :class:`MetricsMiddleware` — op counters and per-op latency accounting
  (always installed; powers the RPC breakdown in experiment reports);
* :class:`TracingMiddleware` — structured spans into the simulator's
  :class:`~repro.simulation.trace.Tracer` (no-op unless tracing is enabled);
* :class:`FaultInjectionMiddleware` — deterministic, seeded fault schedule
  raising :class:`~repro.daos.errors.SimulatedFaultError` *before* the body
  executes, so injected failures never leave partial state behind;
* :class:`RetryMiddleware` — retry with exponential backoff, re-invoking the
  request body (possible precisely because a Request carries a factory, not
  a generator instance).

The default chain (metrics + tracing with tracing disabled) adds no
simulated events, so the blocking call path stays bit-identical to the
pre-RPC-layer client — the golden digests in
``tests/bench/test_determinism.py`` are the contract.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
)

from repro.daos.errors import SimulatedFaultError, TargetDownError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.daos.client import DaosClient

__all__ = [
    "DATA_OPS",
    "Request",
    "Completion",
    "OpStats",
    "Middleware",
    "MetricsMiddleware",
    "TracingMiddleware",
    "FaultInjectionMiddleware",
    "PoolMapRefreshMiddleware",
    "RetryMiddleware",
    "compose_chain",
    "merge_op_stats",
]

#: Ops that move bulk field bytes; everything else is a metadata RPC.  The
#: split drives the metadata-vs-data rollup of the RPC breakdown report.
DATA_OPS = frozenset({"array_write", "array_read"})


@dataclass(slots=True)
class Request:
    """One client RPC: op kind, routing hints, and a re-invocable body.

    ``body`` is a zero-argument factory returning a *fresh* generator that
    performs the op when driven — retry middleware re-invokes it, so bodies
    must not close over partially-consumed state.
    """

    op: str
    body: Callable[[], Generator]
    #: Lead/servicing target index when known at build time (``None`` for
    #: pool-service ops, which have no target).
    target: Optional[int] = None
    #: Payload bytes moved by the op (0 for pure metadata RPCs).
    nbytes: int = 0
    #: Free-form detail for traces (e.g. a dkey or container label).  Any
    #: object is accepted and stringified only when rendered — hot paths
    #: pass the raw key instead of paying for a repr per request.
    detail: object = ""
    #: For a vectorized multi-op submit (``DaosClient.request_multi``):
    #: the sub-requests this request carries, in execution order.  ``None``
    #: for ordinary single-op requests.  Middleware may introspect the
    #: tuple — QoS admission, for one, meters a token per covered sub-op
    #: so batching cannot launder rate limits.
    subrequests: Optional[tuple] = None

    @property
    def is_data(self) -> bool:
        return self.op in DATA_OPS

    @property
    def kind(self) -> str:
        """``"data"`` or ``"metadata"`` — the §6.3.1 op taxonomy."""
        return "data" if self.is_data else "metadata"


@dataclass(slots=True)
class Completion:
    """Outcome of one asynchronous submission reaped from an event queue."""

    op: str
    value: Any
    error: Optional[BaseException]
    submitted: float
    completed: float
    request: Optional[Request] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def latency(self) -> float:
        return self.completed - self.submitted

    def result(self) -> Any:
        """The op's return value; re-raises the op's error if it failed."""
        if self.error is not None:
            raise self.error
        return self.value


@dataclass(slots=True)
class OpStats:
    """Latency/count accumulator for one op kind."""

    count: int = 0
    errors: int = 0
    retries: int = 0
    faults_injected: int = 0
    total_time: float = 0.0
    min_time: float = float("inf")
    max_time: float = 0.0
    total_bytes: int = 0

    def observe(self, elapsed: float, nbytes: int, ok: bool) -> None:
        self.count += 1
        if not ok:
            self.errors += 1
        self.total_time += elapsed
        if elapsed < self.min_time:
            self.min_time = elapsed
        if elapsed > self.max_time:
            self.max_time = elapsed
        self.total_bytes += nbytes

    @property
    def mean_time(self) -> float:
        return self.total_time / self.count if self.count else 0.0

    def merge(self, other: "OpStats") -> None:
        self.count += other.count
        self.errors += other.errors
        self.retries += other.retries
        self.faults_injected += other.faults_injected
        self.total_time += other.total_time
        self.min_time = min(self.min_time, other.min_time)
        self.max_time = max(self.max_time, other.max_time)
        self.total_bytes += other.total_bytes

    def as_dict(self) -> Dict[str, float]:
        """JSON-safe snapshot (``min_time`` of ``inf`` round-trips fine —
        Python's json module emits and parses ``Infinity``)."""
        return {
            "count": self.count,
            "errors": self.errors,
            "retries": self.retries,
            "faults_injected": self.faults_injected,
            "total_time": self.total_time,
            "min_time": self.min_time,
            "max_time": self.max_time,
            "total_bytes": self.total_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "OpStats":
        return cls(
            count=int(data["count"]),
            errors=int(data["errors"]),
            retries=int(data["retries"]),
            faults_injected=int(data["faults_injected"]),
            total_time=data["total_time"],
            min_time=data["min_time"],
            max_time=data["max_time"],
            total_bytes=int(data["total_bytes"]),
        )


def merge_op_stats(stats_dicts: Iterable[Dict[str, OpStats]]) -> Dict[str, OpStats]:
    """Merge per-client ``op_metrics`` dicts into one aggregate view."""
    merged: Dict[str, OpStats] = {}
    for stats in stats_dicts:
        for op, entry in stats.items():
            slot = merged.get(op)
            if slot is None:
                merged[op] = slot = OpStats()
            slot.merge(entry)
    return merged


class Middleware:
    """Base middleware: pass the request down the chain unchanged.

    ``handle`` is a generator driven inside a simulation process; ``call``
    invokes the rest of the chain (terminating at ``request.body()``) and
    may be invoked more than once (retries).

    ``bind`` is the composition hook: it folds this middleware over the
    next handler and returns the callable the chain invokes per request.
    Middlewares that can decide *per call* that they have nothing to do
    (e.g. tracing while no tracer is installed) override it to return the
    inner generator directly, adding zero frames to the hot path.
    """

    def handle(self, client: "DaosClient", request: Request, call):
        result = yield from call(client, request)
        return result

    def bind(self, nxt) -> Callable[["DaosClient", Request], Generator]:
        def handler(client: "DaosClient", request: Request) -> Generator:
            return self.handle(client, request, nxt)

        return handler


class MetricsMiddleware(Middleware):
    """Counts ops and accumulates per-op latency on the owning client.

    Installed outermost, so a retried op counts once and its recorded
    latency covers every attempt plus the backoff — the latency the caller
    actually experienced.
    """

    def handle(self, client: "DaosClient", request: Request, call):
        stats = client.stats
        stats[request.op] = stats.get(request.op, 0) + 1
        entry = client.op_metrics.get(request.op)
        if entry is None:
            client.op_metrics[request.op] = entry = OpStats()
        start = client.sim.now
        try:
            result = yield from call(client, request)
        except BaseException:
            entry.observe(client.sim.now - start, request.nbytes, ok=False)
            raise
        entry.observe(client.sim.now - start, request.nbytes, ok=True)
        return result


class TracingMiddleware(Middleware):
    """Emits one ``rpc`` span per attempt into the simulator's tracer.

    Free when tracing is disabled: ``bind`` checks ``tracer is None`` per
    call and delegates straight to the rest of the chain without inserting
    a generator frame of its own.
    """

    def bind(self, nxt) -> Callable[["DaosClient", Request], Generator]:
        handle = self.handle

        def handler(client: "DaosClient", request: Request) -> Generator:
            if client.sim.tracer is None:
                return nxt(client, request)
            return handle(client, request, nxt)

        return handler

    def handle(self, client: "DaosClient", request: Request, call):
        sim = client.sim
        if sim.tracer is None:
            result = yield from call(client, request)
            return result
        start = sim.now
        try:
            result = yield from call(client, request)
        except BaseException as exc:
            sim.record(
                "rpc",
                op=request.op,
                op_kind=request.kind,
                target=request.target,
                nbytes=request.nbytes,
                start=start,
                end=sim.now,
                status=type(exc).__name__,
            )
            raise
        sim.record(
            "rpc",
            op=request.op,
            op_kind=request.kind,
            target=request.target,
            nbytes=request.nbytes,
            start=start,
            end=sim.now,
            status="ok",
        )
        return result


class FaultInjectionMiddleware(Middleware):
    """Deterministic seeded fault schedule (§7's instabilities, on demand).

    Whether attempt ``n`` of a client faults is a pure function of the
    schedule seed, the client's address, the op kind, and the client's RPC
    sequence number — independent of wall clock and of every other random
    stream, so a faulty run is exactly reproducible.  Faults fire *before*
    the body runs (modelling an RPC lost on the wire): one message latency
    is charged, then :class:`SimulatedFaultError` is raised, leaving all
    functional state untouched — which is what makes retry safe.
    """

    def __init__(self, config) -> None:
        self.config = config
        self._sequence = 0

    def _faults(self, client: "DaosClient", request: Request, sequence: int) -> bool:
        config = self.config
        if config.ops and request.op not in config.ops:
            return False
        token = (
            f"{config.seed}/{client.address.node}.{client.address.socket}"
            f"/{request.op}/{sequence}"
        )
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "little") / float(1 << 64)
        return fraction < config.rate

    def handle(self, client: "DaosClient", request: Request, call):
        sequence = self._sequence
        self._sequence += 1
        config = self.config
        under_cap = config.max_faults is None or client.faults_injected < config.max_faults
        if under_cap and self._faults(client, request, sequence):
            client.faults_injected += 1
            entry = client.op_metrics.get(request.op)
            if entry is not None:
                entry.faults_injected += 1
            client.sim.record(
                "rpc_fault", op=request.op, target=request.target, sequence=sequence
            )
            yield client._latency()  # the round trip that never completed
            raise SimulatedFaultError(
                f"injected fault on {request.op} (sequence {sequence})"
            )
        result = yield from call(client, request)
        return result


class PoolMapRefreshMiddleware(Middleware):
    """Health-aware retry: refetch the pool map on DER_TGT_DOWN, then re-route.

    A :class:`TargetDownError` means the op addressed a target the server
    knows is gone — either the client's cached view is stale (the common
    case right after an engine failure) or the data is genuinely
    unreachable.  The middleware refetches the pool map and retries the op
    (re-invoking the body re-runs target selection against the fresh view)
    *only if* the fetched map is newer than the view the client held;
    otherwise the error is surfaced, because retrying against the same map
    would loop forever on a permanently lost object.  The map version is
    strictly increasing, so the retry loop is bounded by the number of
    health transitions in the run.
    """

    def handle(self, client: "DaosClient", request: Request, call):
        while True:
            try:
                result = yield from call(client, request)
                return result
            except TargetDownError:
                refreshed = yield from client._refresh_pool_map()
                if not refreshed:
                    raise
                entry = client.op_metrics.get(request.op)
                if entry is not None:
                    entry.retries += 1
                client.sim.record(
                    "rpc_map_refresh",
                    op=request.op,
                    map_version=client._map_view.version,
                )


class RetryMiddleware(Middleware):
    """Retry-with-backoff on :class:`SimulatedFaultError`.

    Sits outside fault injection (and the body), so it recovers both
    injected faults and genuinely raised simulated instabilities.  Backoff
    is exponential from ``policy.backoff_base``; the final failure is
    re-raised once ``policy.max_attempts`` is exhausted.
    """

    def __init__(self, policy) -> None:
        self.policy = policy

    def handle(self, client: "DaosClient", request: Request, call):
        policy = self.policy
        attempt = 1
        while True:
            try:
                result = yield from call(client, request)
                return result
            except SimulatedFaultError:
                if attempt >= policy.max_attempts:
                    raise
                entry = client.op_metrics.get(request.op)
                if entry is not None:
                    entry.retries += 1
                client.sim.record("rpc_retry", op=request.op, attempt=attempt)
                backoff = policy.backoff_base * policy.backoff_factor ** (attempt - 1)
                yield client.sim.timeout(backoff)
                attempt += 1


def _plain_metrics(client: "DaosClient", request: Request) -> Generator:
    """Straight-line dispatch for the plain (metrics-only) chain.

    The exact :class:`MetricsMiddleware` accounting inlined around the op
    body — two generator frames total (this one plus the body) instead of
    the composed chain's middleware frames and per-call ``bind`` closures.
    Outcomes, metrics and timing are bit-identical to the generic chain;
    ``tests/daos/test_fast_path.py`` enforces it across chain configurations.
    """
    stats = client.stats
    op = request.op
    stats[op] = stats.get(op, 0) + 1
    entry = client.op_metrics.get(op)
    if entry is None:
        client.op_metrics[op] = entry = OpStats()
    sim = client.sim
    start = sim.now
    try:
        result = yield from request.body()
    except BaseException:
        entry.observe(sim.now - start, request.nbytes, ok=False)
        raise
    entry.observe(sim.now - start, request.nbytes, ok=True)
    return result


def compose_chain(
    middlewares: List[Middleware],
) -> Callable[["DaosClient", Request], Generator]:
    """Fold a middleware list (outermost first) into one callable.

    The returned callable produces the generator that ``DaosClient._submit``
    drives; the innermost stage invokes ``request.body()``.

    The *plain* chain — exactly ``[MetricsMiddleware, TracingMiddleware]``,
    the default when fault injection and health are off — is specialised:
    while no tracer is installed and the request carries no sub-requests,
    dispatch goes through :func:`_plain_metrics` with zero middleware
    generator frames.  Tracer installation mid-run (or a multi-op request)
    falls back to the generically composed chain per call.
    """

    def terminal(client: "DaosClient", request: Request) -> Generator:
        return request.body()

    if (
        len(middlewares) == 2
        and type(middlewares[0]) is MetricsMiddleware
        and type(middlewares[1]) is TracingMiddleware
    ):
        generic = middlewares[0].bind(middlewares[1].bind(terminal))

        def plain_handler(client: "DaosClient", request: Request) -> Generator:
            if client.sim.tracer is None and request.subrequests is None:
                return _plain_metrics(client, request)
            return generic(client, request)

        return plain_handler

    handler = terminal
    for middleware in reversed(middlewares):
        handler = middleware.bind(handler)
    return handler
