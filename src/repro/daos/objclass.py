"""DAOS object classes: striping (and, as an extension, replication).

The paper exercises three classes (§5.4): ``S1`` (no striping), ``S2``
(striping across two targets) and ``SX`` (striping across all pool
targets).  ``S4`` is included as it exists in DAOS and is useful for the
striping ablation.  Replicated classes (``RP_2G1``-style) are modelled as a
forward-looking extension: shards are written to ``replicas`` distinct
target groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.daos.errors import InvalidArgumentError

__all__ = [
    "ObjectClass",
    "OC_S1",
    "OC_S2",
    "OC_S4",
    "OC_SX",
    "OC_RP_2G1",
    "OC_RP_3G1",
    "object_class_by_name",
    "object_class_by_id",
]


@dataclass(frozen=True)
class ObjectClass:
    """An object class: how an object spreads over pool targets.

    ``stripe_count`` of ``None`` means "all targets in the pool" (the ``X``
    classes).  ``replicas`` > 1 duplicates every shard on that many separate
    targets.
    """

    name: str
    class_id: int
    stripe_count: Optional[int]
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.stripe_count is not None and self.stripe_count < 1:
            raise InvalidArgumentError(
                f"stripe count must be >= 1 or None, got {self.stripe_count}"
            )
        if self.replicas < 1:
            raise InvalidArgumentError(f"replicas must be >= 1, got {self.replicas}")

    def resolve_stripes(self, n_targets: int) -> int:
        """Number of stripe shards given a pool with ``n_targets`` targets."""
        if n_targets < 1:
            raise InvalidArgumentError(f"pool needs >= 1 target, got {n_targets}")
        if self.stripe_count is None:
            return n_targets
        return min(self.stripe_count, n_targets)

    def __str__(self) -> str:
        return self.name


OC_S1 = ObjectClass("S1", class_id=1, stripe_count=1)
OC_S2 = ObjectClass("S2", class_id=2, stripe_count=2)
OC_S4 = ObjectClass("S4", class_id=4, stripe_count=4)
OC_SX = ObjectClass("SX", class_id=31, stripe_count=None)
#: Extension: 2-way replication, one shard per group (not used by the paper's
#: benchmarks, available for durability experiments).
OC_RP_2G1 = ObjectClass("RP_2G1", class_id=130, stripe_count=1, replicas=2)
#: Extension: 3-way replication — survives a double engine loss, the class
#: the ``rebuild`` experiment contrasts with RP_2G1.
OC_RP_3G1 = ObjectClass("RP_3G1", class_id=131, stripe_count=1, replicas=3)

_BY_NAME: Dict[str, ObjectClass] = {
    oc.name: oc for oc in (OC_S1, OC_S2, OC_S4, OC_SX, OC_RP_2G1, OC_RP_3G1)
}
_BY_ID: Dict[int, ObjectClass] = {oc.class_id: oc for oc in _BY_NAME.values()}


def object_class_by_name(name: str) -> ObjectClass:
    """Look up a class by name (``'S1'``, ``'S2'``, ``'SX'``, ...)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise InvalidArgumentError(
            f"unknown object class {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def object_class_by_id(class_id: int) -> ObjectClass:
    """Look up a class by its numeric id (as encoded in OIDs)."""
    try:
        return _BY_ID[class_id]
    except KeyError:
        raise InvalidArgumentError(f"unknown object class id {class_id}") from None
