"""DFS — the POSIX-like file system layer over DAOS objects.

The paper motivates domain-agnostic object stores partly because they
"enable implementation of high-performance user-facing tools, including
... file system interfaces" (§2); DAOS ships one (libdfs).  This module
reproduces its essential design: a container holds a filesystem whose
directories are Key-Value objects mapping entry names to OIDs and whose
files are Array objects.  All operations ride the timed
:class:`~repro.backends.protocol.StorageClient`, so DFS workloads exercise
the same metadata and data paths as the weather-field store.

Paths are POSIX-style absolute strings (``"/fc/t850.grib"``).  The layer is
deliberately small — enough for the mdtest-style metadata benchmark and for
applications that want a file-ish API over the simulated store.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.backends.protocol import StorageClient
from repro.daos.container import Container
from repro.daos.errors import DaosError, InvalidArgumentError
from repro.daos.objclass import OC_S1, OC_SX, ObjectClass
from repro.daos.oid import ObjectId
from repro.daos.payload import BytesPayload, Payload
from repro.daos.pool import Pool

__all__ = ["DfsError", "FileExistsDfsError", "FileNotFoundDfsError", "Dfs", "DfsStat"]

#: Well-known OID of the root directory KV.
ROOT_DIR_OID = ObjectId.from_user(0, 0xD15)
#: Directory-entry value layout: kind byte + OID (hi, lo).
_KIND_DIR = b"d"
_KIND_FILE = b"f"


class DfsError(DaosError):
    """Base class for DFS failures."""


class FileNotFoundDfsError(DfsError):
    """Path component does not exist."""

    code = -1005


class FileExistsDfsError(DfsError):
    """Entry already exists."""

    code = -1004


@dataclass(frozen=True)
class DfsStat:
    """Stat result: entry kind and size."""

    path: str
    is_dir: bool
    size: int


def _encode_entry(kind: bytes, oid: ObjectId) -> bytes:
    return kind + oid.hi.to_bytes(8, "big") + oid.lo.to_bytes(8, "big")


def _decode_entry(value: bytes) -> Tuple[bytes, ObjectId]:
    if len(value) != 17 or value[:1] not in (_KIND_DIR, _KIND_FILE):
        raise DfsError(f"corrupt directory entry of {len(value)} bytes")
    return value[:1], ObjectId(
        hi=int.from_bytes(value[1:9], "big"), lo=int.from_bytes(value[9:17], "big")
    )


def _split(path: str) -> List[str]:
    normalised = posixpath.normpath(path)
    if not normalised.startswith("/"):
        raise InvalidArgumentError(f"DFS paths must be absolute, got {path!r}")
    if normalised == "/":
        return []
    parts = normalised.lstrip("/").split("/")
    if any(part in ("", ".", "..") for part in parts):
        raise InvalidArgumentError(f"unsupported path component in {path!r}")
    return parts


class Dfs:
    """A POSIX-flavoured filesystem in one DAOS container.

    All methods are generators driven inside simulation processes, mirroring
    the client they wrap.  Directory KVs stripe across all targets; file
    arrays default to no striping (tunable per file via ``oclass``).
    """

    def __init__(
        self,
        client: StorageClient,
        pool: Pool,
        container: Container,
        dir_oclass: ObjectClass = OC_SX,
        file_oclass: ObjectClass = OC_S1,
    ) -> None:
        self.client = client
        self.pool = pool
        self.container = container
        self.dir_oclass = dir_oclass
        self.file_oclass = file_oclass

    # -- bootstrap ---------------------------------------------------------------
    @staticmethod
    def mount(client: StorageClient, pool: Pool, label: str = "dfs"):
        """Open (creating if needed) the filesystem container and root dir."""
        from repro.daos.errors import ContainerExistsError

        try:
            container = yield from client.container_create(
                pool, label=label, is_default=True
            )
        except ContainerExistsError:
            container = yield from client.container_open(pool, label)
        dfs = Dfs(client, pool, container)
        yield from client.kv_open(container, ROOT_DIR_OID, dfs.dir_oclass)
        return dfs

    # -- internals ---------------------------------------------------------------
    def _open_dir_kv(self, oid: ObjectId):
        kv = yield from self.client.kv_open(self.container, oid, self.dir_oclass)
        return kv

    def _walk(self, parts: List[str]):
        """Resolve a directory path to its KV; raises on missing components."""
        kv = yield from self._open_dir_kv(ROOT_DIR_OID)
        walked = []
        for part in parts:
            walked.append(part)
            entry = yield from self.client.kv_get_or_none(kv, part.encode())
            if entry is None:
                raise FileNotFoundDfsError(f"no such directory: /{'/'.join(walked)}")
            kind, oid = _decode_entry(entry)
            if kind != _KIND_DIR:
                raise DfsError(f"not a directory: /{'/'.join(walked)}")
            kv = yield from self._open_dir_kv(oid)
        return kv

    def _parent_and_name(self, path: str):
        parts = _split(path)
        if not parts:
            raise InvalidArgumentError("the root directory cannot be a target")
        parent = yield from self._walk(parts[:-1])
        return parent, parts[-1]

    # -- directories --------------------------------------------------------------
    def mkdir(self, path: str):
        """Create a directory; parents must exist."""
        parent, name = yield from self._parent_and_name(path)
        existing = yield from self.client.kv_get_or_none(parent, name.encode())
        if existing is not None:
            raise FileExistsDfsError(f"entry exists: {path}")
        oid = self.container.oid_allocator.allocate(self.dir_oclass.class_id)
        yield from self.client.kv_open(self.container, oid, self.dir_oclass)
        yield from self.client.kv_put(parent, name.encode(), _encode_entry(_KIND_DIR, oid))

    def listdir(self, path: str = "/"):
        """Entry names in a directory, sorted."""
        kv = yield from self._walk(_split(path))
        names = yield from self.client.kv_list(kv)
        return sorted(name.decode() for name in names)

    # -- files ---------------------------------------------------------------------
    def write_file(self, path: str, data, oclass: Optional[ObjectClass] = None):
        """Create or replace a file with ``data``."""
        if not isinstance(data, Payload):
            data = BytesPayload(bytes(data))
        parent, name = yield from self._parent_and_name(path)
        existing = yield from self.client.kv_get_or_none(parent, name.encode())
        if existing is not None:
            kind, oid = _decode_entry(existing)
            if kind != _KIND_FILE:
                raise FileExistsDfsError(f"directory exists at {path}")
            array = self.container.get_object(oid)
            if array.size > data.size:
                yield from self.client.array_set_size(array, data.size, pool=self.pool)
        else:
            array = yield from self.client.array_create(
                self.container, oclass or self.file_oclass
            )
            yield from self.client.kv_put(
                parent, name.encode(), _encode_entry(_KIND_FILE, array.oid)
            )
        yield from self.client.array_write(array, 0, data, pool=self.pool)
        yield from self.client.array_close(array)

    def read_file(self, path: str):
        """Read a whole file; raises if the path is missing or a directory."""
        array = yield from self._resolve_file(path)
        size = yield from self.client.array_get_size(array)
        payload = yield from self.client.array_read(array, 0, size)
        yield from self.client.array_close(array)
        return payload

    def _resolve_file(self, path: str):
        parent, name = yield from self._parent_and_name(path)
        entry = yield from self.client.kv_get_or_none(parent, name.encode())
        if entry is None:
            raise FileNotFoundDfsError(f"no such file: {path}")
        kind, oid = _decode_entry(entry)
        if kind != _KIND_FILE:
            raise DfsError(f"is a directory: {path}")
        array = yield from self.client.array_open(self.container, oid)
        return array

    # -- metadata --------------------------------------------------------------------
    def stat(self, path: str):
        """Stat an entry (root stats as a directory of size 0)."""
        parts = _split(path)
        if not parts:
            return DfsStat(path="/", is_dir=True, size=0)
        parent = yield from self._walk(parts[:-1])
        entry = yield from self.client.kv_get_or_none(parent, parts[-1].encode())
        if entry is None:
            raise FileNotFoundDfsError(f"no such entry: {path}")
        kind, oid = _decode_entry(entry)
        if kind == _KIND_DIR:
            return DfsStat(path=path, is_dir=True, size=0)
        array = self.container.get_object(oid)
        size = yield from self.client.array_get_size(array)
        return DfsStat(path=path, is_dir=False, size=size)

    def exists(self, path: str):
        try:
            yield from self.stat(path)
        except FileNotFoundDfsError:
            return False
        return True

    def unlink(self, path: str):
        """Remove a file (punching its array) or an *empty* directory."""
        parent, name = yield from self._parent_and_name(path)
        entry = yield from self.client.kv_get_or_none(parent, name.encode())
        if entry is None:
            raise FileNotFoundDfsError(f"no such entry: {path}")
        kind, oid = _decode_entry(entry)
        if kind == _KIND_DIR:
            kv = yield from self._open_dir_kv(oid)
            names = yield from self.client.kv_list(kv)
            if names:
                raise DfsError(f"directory not empty: {path}")
            self.container.remove_object(oid)
        else:
            if self.container.has_object(oid):
                array = self.container.get_object(oid)
                yield from self.client.array_punch(self.container, array, pool=self.pool)
        yield from self.client.kv_remove(parent, name.encode())
