"""Backend registry: name -> :class:`~repro.backends.protocol.StorageSystem`.

Imports are lazy so selecting the default backend never pays for (or
depends on) the others.
"""

from __future__ import annotations

from typing import Tuple

from repro.config import ClusterConfig

__all__ = ["BACKENDS", "build_system", "build_deployment"]

#: Registered backend names, in CLI/choice order.
BACKENDS: Tuple[str, ...] = ("daos", "posixfs")


def build_system(cluster, backend: str = "daos"):
    """Instantiate the storage system named ``backend`` over ``cluster``."""
    if backend == "daos":
        from repro.daos.system import DaosSystem

        return DaosSystem(cluster)
    if backend == "posixfs":
        from repro.posixfs.system import PosixSystem

        return PosixSystem(cluster)
    raise ValueError(
        f"unknown storage backend {backend!r}; expected one of {BACKENDS}"
    )


def build_deployment(config: ClusterConfig, backend: str = "daos"):
    """Cluster + storage system + default pool for one simulated deployment."""
    from repro.hardware.topology import Cluster

    cluster = Cluster(config)
    system = build_system(cluster, backend)
    pool = system.create_pool()
    return cluster, system, pool
