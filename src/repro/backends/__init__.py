"""Pluggable storage backends behind one client/system protocol.

The simulation originally hard-wired :class:`~repro.daos.client.DaosClient`
into every bench, workload, and experiment.  This package lifts the implied
interface into an explicit protocol (:mod:`repro.backends.protocol`) and a
tiny registry (:mod:`repro.backends.registry`), so a second storage model —
the Lustre-style shared POSIX file system in :mod:`repro.posixfs` — can run
the exact same workloads for A/B comparison (arXiv 2211.09162).
"""

from repro.backends.protocol import StorageClient, StorageSystem
from repro.backends.registry import BACKENDS, build_deployment, build_system

__all__ = [
    "BACKENDS",
    "StorageClient",
    "StorageSystem",
    "build_deployment",
    "build_system",
]
