"""The ``StorageBackend`` protocol every storage model implements.

Two structural interfaces define what a backend must provide:

:class:`StorageSystem`
    One deployment: owns pools, object placement, and a ``make_client``
    factory.  Built over a :class:`~repro.hardware.topology.Cluster` by
    :func:`repro.backends.registry.build_system`.

:class:`StorageClient`
    One simulated process's handle onto a system.  Every operation is a
    *generator* driven with ``yield from`` inside a simulation process; it
    charges the backend's latency/service/bandwidth costs and returns the
    functional result.  ``request_*`` builders expose the same ops as
    :class:`~repro.daos.rpc.Request` objects for asynchronous submission
    through an event queue.

Consumers (``FieldIO``, the IOR/mdtest/FieldIO benches, the I/O-server
workload, ``FDB``) are written against these protocols only — they never
name a concrete client class.  The contract each implementation must keep:

- *functional semantics* are identical across backends (same values
  returned, same error taxonomy from :mod:`repro.daos.errors`); only the
  *timing* — where latency, serialisation, and contention accrue — differs;
- ops pass through the client's middleware chain, so metrics, tracing,
  seeded fault injection, and retry behave identically on every backend;
- determinism: two same-seed runs of the same workload on the same backend
  produce bit-identical event streams.

The protocols are ``runtime_checkable`` so the conformance suite
(``tests/backends/test_protocol_conformance.py``) can assert structural
compliance, but they are intentionally method-presence checks only —
generator signatures are enforced by the shared behavioural tests, not by
``isinstance``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Protocol, runtime_checkable

__all__ = ["StorageClient", "StorageSystem"]


@runtime_checkable
class StorageSystem(Protocol):
    """One storage deployment over a simulated cluster."""

    #: Registry name ("daos", "posixfs", ...).
    backend_name: str

    def make_client(self, address, middleware=None) -> "StorageClient":
        """A per-process client bound to ``address``."""
        ...

    def create_pool(self, label: str = "pool0", scm_bytes_per_target=None):
        """Create a pool spanning every target of every engine."""
        ...

    def register_object(self, obj, oclass, container_salt: int = 0) -> None:
        """Compute placement for a fresh object and attach its lock."""
        ...

    def target(self, global_index: int):
        """The target at a global index."""
        ...

    def engine_of_target(self, global_index: int):
        """Engine address that owns a target."""
        ...

    @property
    def n_targets(self) -> int: ...

    def arm_failure_schedule(self) -> None:
        """Start the health monitor (health-capable backends only)."""
        ...


@runtime_checkable
class StorageClient(Protocol):
    """One simulated process's handle onto a :class:`StorageSystem`.

    All ``*_open``/``*_put``/``*_read``-style methods are generators; see
    the module docstring for the contract.
    """

    system: Any
    stats: Dict[str, int]
    op_metrics: Dict[str, Any]
    middleware: List[Any]

    # -- pool / container ---------------------------------------------------------
    def pool_connect(self, pool): ...

    def container_create(self, pool, uuid=None, label="", is_default=False): ...

    def container_open(self, pool, ref): ...

    def container_exists(self, pool, ref): ...

    def container_destroy(self, pool, ref): ...

    # -- key-value ---------------------------------------------------------------
    def kv_open(self, container, oid, oclass): ...

    def kv_put(self, kv, key, value): ...

    def kv_get(self, kv, key): ...

    def kv_get_or_none(self, kv, key): ...

    def kv_list(self, kv): ...

    def kv_remove(self, kv, key): ...

    # -- arrays ------------------------------------------------------------------
    def array_create(self, container, oclass, oid=None): ...

    def array_open(self, container, oid): ...

    def array_close(self, array): ...

    def array_get_size(self, array): ...

    def array_set_size(self, array, size, pool=None): ...

    def array_punch(self, container, array, pool=None): ...

    def array_write(self, array, offset, payload, pool=None): ...

    def array_read(self, array, offset, length): ...

    # -- async submission --------------------------------------------------------
    def eq_create(self, name: str = "eq"): ...

    def request_kv_put(self, kv, key, value): ...

    def request_kv_get(self, kv, key): ...

    def request_array_write(self, array, offset, payload, pool=None): ...

    def request_array_read(self, array, offset, length): ...

    def request_array_close(self, array): ...

    # -- vectorized multi-op submission -------------------------------------------
    def request_multi(self, requests, op: str = "multi"): ...

    def submit_multi(self, requests, op: str = "multi"): ...

    def kv_put_many(self, kv, items): ...

    def kv_get_many(self, kv, keys): ...
