"""NWP workload generation: synthetic weather fields and benchmark key streams.

The unit of data is the *weather field* — a 2-D slice over the Earth's
surface for one variable at one time, 1–5 MiB encoded (§1.2).  Benchmarks
only need sizes and keys (payloads are lazy patterns); the examples use
:func:`~repro.workloads.fields.synthesize_field` for physically-shaped real
data.
"""

from repro.workloads.fields import (
    GaussianGrid,
    PRESSURE_LEVELS,
    UPPER_AIR_PARAMS,
    SURFACE_PARAMS,
    field_payload,
    synthesize_field,
)
from repro.workloads.forecast import ForecastSpec
from repro.workloads.generator import (
    pattern_a_keys,
    pattern_b_pairs,
    forecast_msk,
    serving_catalog,
    serving_request,
)
from repro.workloads.ioserver import PipelineParams, PipelineResult, run_pipeline
from repro.workloads.zipf import (
    TenantSpec,
    TrafficSchedule,
    zipf_schedule,
    zipf_weights,
)

__all__ = [
    "GaussianGrid",
    "PRESSURE_LEVELS",
    "UPPER_AIR_PARAMS",
    "SURFACE_PARAMS",
    "field_payload",
    "synthesize_field",
    "ForecastSpec",
    "pattern_a_keys",
    "pattern_b_pairs",
    "forecast_msk",
    "serving_catalog",
    "serving_request",
    "PipelineParams",
    "PipelineResult",
    "run_pipeline",
    "TenantSpec",
    "TrafficSchedule",
    "zipf_schedule",
    "zipf_weights",
]
