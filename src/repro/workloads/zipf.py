"""Zipf-distributed, multi-tenant open-loop request traffic.

The dissemination tier's load model: an aggregate Poisson arrival process
(open loop — arrivals do not wait for completions, like real users hitting
a gateway) split across tenants by weight, each request drawing its target
field from a zipf(``exponent``) popularity law over the catalog.  The
rank -> field mapping is a seeded permutation, so the "hot" fields are
scattered over the catalog instead of clustering at low indices (which
would correlate popularity with placement).

Everything is derived from ``(seed, parameters)`` through a dedicated
named stream — fully deterministic, vectorised, and independent of any
other randomness in the simulation.  Draw order is fixed and documented in
:func:`zipf_schedule`; adding draws later must append, never reorder.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, Sequence, Tuple

import numpy as np

__all__ = ["TenantSpec", "TrafficSchedule", "zipf_weights", "zipf_schedule"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the serving tier and its share of the traffic."""

    name: str
    share: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.share <= 0:
            raise ValueError(f"tenant share must be positive, got {self.share}")


def _traffic_rng(seed: int) -> np.random.Generator:
    """The dedicated ``zipf-traffic`` stream (RngRegistry naming idiom)."""
    digest = hashlib.sha256(b"zipf-traffic").digest()
    entropy = int.from_bytes(digest[:8], "little")
    return np.random.Generator(
        np.random.PCG64(np.random.SeedSequence(entropy=[seed, entropy]))
    )


def zipf_weights(n_fields: int, exponent: float) -> np.ndarray:
    """Normalised zipf pmf over ranks ``1..n_fields`` (rank 0 hottest)."""
    if n_fields < 1:
        raise ValueError(f"need >= 1 fields, got {n_fields}")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    weights = 1.0 / np.arange(1, n_fields + 1, dtype=np.float64) ** exponent
    return weights / weights.sum()


@dataclass
class TrafficSchedule:
    """A materialised request schedule: parallel arrays, one row per request."""

    #: Arrival times in simulated seconds, nondecreasing.
    times: np.ndarray
    #: Tenant index per request (into :attr:`tenant_names`).
    tenant_ids: np.ndarray
    #: Popularity rank per request (0 = hottest).
    ranks: np.ndarray
    #: Catalog field index per request (seeded permutation of the rank).
    field_ids: np.ndarray
    tenant_names: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, str, int]]:
        """Yield ``(arrival_time, tenant_name, field_index)`` per request."""
        for i in range(len(self.times)):
            yield (
                float(self.times[i]),
                self.tenant_names[self.tenant_ids[i]],
                int(self.field_ids[i]),
            )

    @property
    def duration(self) -> float:
        """Arrival time of the last request."""
        return float(self.times[-1]) if len(self.times) else 0.0

    def rank_counts(self) -> np.ndarray:
        """Requests per popularity rank (index 0 = hottest)."""
        n_ranks = int(self.ranks.max()) + 1 if len(self.ranks) else 0
        return np.bincount(self.ranks, minlength=n_ranks)

    def tenant_counts(self) -> Dict[str, int]:
        """Requests per tenant name."""
        counts = np.bincount(self.tenant_ids, minlength=len(self.tenant_names))
        return {name: int(counts[i]) for i, name in enumerate(self.tenant_names)}


def zipf_schedule(
    *,
    n_requests: int,
    rate: float,
    n_fields: int,
    exponent: float,
    tenants: Sequence[TenantSpec],
    seed: int = 0,
) -> TrafficSchedule:
    """Build an open-loop zipf request schedule.

    Draw order (fixed for reproducibility): inter-arrival gaps, tenant
    choices, popularity ranks, then the rank -> field permutation.
    """
    if n_requests < 1:
        raise ValueError(f"need >= 1 requests, got {n_requests}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if not tenants:
        raise ValueError("need at least one tenant")
    names = tuple(t.name for t in tenants)
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in {names}")

    rng = _traffic_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate, size=n_requests)
    times = np.cumsum(gaps)
    shares = np.array([t.share for t in tenants], dtype=np.float64)
    tenant_ids = rng.choice(len(tenants), size=n_requests, p=shares / shares.sum())
    cdf = np.cumsum(zipf_weights(n_fields, exponent))
    # Inverse-CDF zipf draw: searchsorted is exact and vectorised.
    ranks = np.searchsorted(cdf, rng.random(n_requests), side="right")
    ranks = np.minimum(ranks, n_fields - 1).astype(np.int64)
    permutation = rng.permutation(n_fields)
    return TrafficSchedule(
        times=times,
        tenant_ids=tenant_ids.astype(np.int64),
        ranks=ranks,
        field_ids=permutation[ranks],
        tenant_names=names,
    )
