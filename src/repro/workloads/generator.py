"""Benchmark key streams (§5.2–5.3).

The Field I/O benchmark's contention knob is entirely a property of the keys
the processes use:

* **low contention** — each process writes/reads fields of *its own*
  forecast (its own index KV and, in full mode, its own containers);
* **high contention** — every process shares one forecast, so all index
  traffic funnels through a single shared forecast index KV.

Keys are unique per (rank, op) in both cases — processes never write the
same *field*, only (in high contention) the same *index object*.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.fdb.key import FieldKey

__all__ = ["forecast_msk", "pattern_a_keys", "pattern_b_pairs"]


def forecast_msk(rank: int, shared: bool) -> FieldKey:
    """Most-significant key for a benchmark process.

    ``shared=True`` gives every rank the same forecast (maximum contention
    on its index KV); otherwise each rank gets its own ``expver``.
    """
    expver = "0001" if shared else f"{rank + 1:04x}"
    return FieldKey(
        {
            "class": "rd",
            "stream": "oper",
            "expver": expver,
            "date": "20260705",
            "time": "00",
        }
    )


def _field_key(msk: FieldKey, rank: int, index: int) -> FieldKey:
    """A field key unique to (rank, index) within a forecast.

    ``levelist`` encodes the rank and ``step`` the op index, so two
    processes sharing a forecast still address distinct fields.
    """
    return msk.merged(
        {
            "type": "fc",
            "levtype": "ml",
            "levelist": str(rank + 1),
            "param": "t",
            "step": str(index),
        }
    )


def pattern_a_keys(rank: int, n_ops: int, shared_forecast: bool) -> List[FieldKey]:
    """The key sequence one process writes (then reads) in access pattern A."""
    if n_ops < 1:
        raise ValueError(f"need >= 1 ops, got {n_ops}")
    msk = forecast_msk(rank, shared_forecast)
    return [_field_key(msk, rank, i) for i in range(n_ops)]


def pattern_b_pairs(
    n_processes: int, shared_forecast: bool
) -> Tuple[List[FieldKey], List[FieldKey]]:
    """Designated keys for access pattern B (§5.3).

    The first half of the processes are writers, the second half readers;
    reader ``i`` reads exactly the field writer ``i`` re-writes, which is
    what induces the writer/reader contention the pattern is designed to
    exhibit.  Returns ``(writer_keys, reader_keys)`` with one key per
    writer/reader.
    """
    if n_processes < 2 or n_processes % 2 != 0:
        raise ValueError(
            f"pattern B needs an even process count >= 2, got {n_processes}"
        )
    n_writers = n_processes // 2
    writer_keys = []
    for writer_rank in range(n_writers):
        msk = forecast_msk(writer_rank, shared_forecast)
        writer_keys.append(_field_key(msk, writer_rank, 0))
    reader_keys = list(writer_keys)
    return writer_keys, reader_keys
