"""Benchmark key streams (§5.2–5.3).

The Field I/O benchmark's contention knob is entirely a property of the keys
the processes use:

* **low contention** — each process writes/reads fields of *its own*
  forecast (its own index KV and, in full mode, its own containers);
* **high contention** — every process shares one forecast, so all index
  traffic funnels through a single shared forecast index KV.

Keys are unique per (rank, op) in both cases — processes never write the
same *field*, only (in high contention) the same *index object*.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.fdb.key import FieldKey
from repro.fdb.request import Request

__all__ = [
    "forecast_msk",
    "pattern_a_keys",
    "pattern_b_pairs",
    "serving_catalog",
    "serving_request",
]


def forecast_msk(rank: int, shared: bool) -> FieldKey:
    """Most-significant key for a benchmark process.

    ``shared=True`` gives every rank the same forecast (maximum contention
    on its index KV); otherwise each rank gets its own ``expver``.
    """
    expver = "0001" if shared else f"{rank + 1:04x}"
    return FieldKey(
        {
            "class": "rd",
            "stream": "oper",
            "expver": expver,
            "date": "20260705",
            "time": "00",
        }
    )


def _field_key(msk: FieldKey, rank: int, index: int) -> FieldKey:
    """A field key unique to (rank, index) within a forecast.

    ``levelist`` encodes the rank and ``step`` the op index, so two
    processes sharing a forecast still address distinct fields.
    """
    return msk.merged(
        {
            "type": "fc",
            "levtype": "ml",
            "levelist": str(rank + 1),
            "param": "t",
            "step": str(index),
        }
    )


def pattern_a_keys(rank: int, n_ops: int, shared_forecast: bool) -> List[FieldKey]:
    """The key sequence one process writes (then reads) in access pattern A."""
    if n_ops < 1:
        raise ValueError(f"need >= 1 ops, got {n_ops}")
    msk = forecast_msk(rank, shared_forecast)
    return [_field_key(msk, rank, i) for i in range(n_ops)]


def pattern_b_pairs(
    n_processes: int, shared_forecast: bool
) -> Tuple[List[FieldKey], List[FieldKey]]:
    """Designated keys for access pattern B (§5.3).

    The first half of the processes are writers, the second half readers;
    reader ``i`` reads exactly the field writer ``i`` re-writes, which is
    what induces the writer/reader contention the pattern is designed to
    exhibit.  Returns ``(writer_keys, reader_keys)`` with one key per
    writer/reader.
    """
    if n_processes < 2 or n_processes % 2 != 0:
        raise ValueError(
            f"pattern B needs an even process count >= 2, got {n_processes}"
        )
    n_writers = n_processes // 2
    writer_keys = []
    for writer_rank in range(n_writers):
        msk = forecast_msk(writer_rank, shared_forecast)
        writer_keys.append(_field_key(msk, writer_rank, 0))
    reader_keys = list(writer_keys)
    return writer_keys, reader_keys


#: Fixed least-significant components of every product-serving field.
_SERVING_LSK = {"type": "fc", "levtype": "ml", "levelist": "1", "param": "t"}


def serving_catalog(n_fields: int) -> List[FieldKey]:
    """The dissemination catalog: one archived cycle of ``n_fields`` fields.

    All fields live in one shared forecast (the freshly completed cycle the
    users are hammering); field ``i`` is addressed by ``step=i``, so a MARS
    request covering several consecutive steps expands to several catalog
    fields.
    """
    if n_fields < 1:
        raise ValueError(f"need >= 1 fields, got {n_fields}")
    msk = forecast_msk(0, shared=True)
    return [msk.merged({**_SERVING_LSK, "step": str(i)}) for i in range(n_fields)]


def serving_request(field_index: int, n_fields: int, span: int = 1) -> Request:
    """The MARS request a user issues for catalog field ``field_index``.

    ``span`` consecutive steps (wrapping at the catalog end) are requested
    together — the multi-field retrieval shape of product generation.  The
    expansion covers exactly the :func:`serving_catalog` keys.
    """
    if not 0 <= field_index < n_fields:
        raise ValueError(f"field_index {field_index} outside [0, {n_fields})")
    if not 1 <= span <= n_fields:
        raise ValueError(f"span must be in [1, {n_fields}], got {span}")
    msk = forecast_msk(0, shared=True)
    steps = tuple(str((field_index + j) % n_fields) for j in range(span))
    return Request({**dict(msk), **_SERVING_LSK, "step": steps})
