"""Synthetic weather fields.

Fields are 2-D global slices of one variable (§1.2), currently 1–5 MiB at
ECMWF.  Two generators are provided:

* :func:`field_payload` — a lazy :class:`~repro.daos.payload.PatternPayload`
  of a chosen size, keyed deterministically off the field key (zero memory;
  what the benchmarks use);
* :func:`synthesize_field` — an actual ``float32`` lat/lon grid with a
  plausible large-scale structure (zonal mean + planetary waves + noise),
  for the examples and for end-to-end content verification.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.daos.payload import BytesPayload, PatternPayload
from repro.fdb.key import FieldKey
from repro.units import MiB

__all__ = [
    "UPPER_AIR_PARAMS",
    "SURFACE_PARAMS",
    "PRESSURE_LEVELS",
    "GaussianGrid",
    "field_payload",
    "synthesize_field",
]

#: Common upper-air parameters (MARS shortNames).
UPPER_AIR_PARAMS = ("t", "u", "v", "q", "z", "w", "d", "r", "vo", "o3")
#: Common surface parameters.
SURFACE_PARAMS = ("2t", "10u", "10v", "msl", "tp", "sp", "skt", "tcc")
#: Standard pressure levels (hPa).
PRESSURE_LEVELS = (
    "1000", "925", "850", "700", "500", "400", "300",
    "250", "200", "150", "100", "50", "10",
)


@dataclass(frozen=True)
class GaussianGrid:
    """A simple regular lat/lon stand-in for ECMWF's Gaussian grids.

    ``o320``-ish resolutions give fields of roughly the 1–5 MiB the paper
    quotes once encoded as float32.
    """

    n_lat: int = 640
    n_lon: int = 1280

    @property
    def points(self) -> int:
        return self.n_lat * self.n_lon

    @property
    def nbytes_f32(self) -> int:
        return self.points * 4


@lru_cache(maxsize=None)
def _seed_from_key(key: FieldKey) -> int:
    # Cached: benchmarks call this once per op (write *and* verify-read) for
    # a keyset that is tiny compared to the op count; FieldKey is frozen and
    # hashable, so the seed is a pure function of the key.
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "little")


def field_payload(key: FieldKey, size: int = 1 * MiB) -> PatternPayload:
    """Lazy payload of ``size`` bytes, deterministic in the field key.

    Two calls for the same key produce identical content, so a benchmark's
    read phase can verify what the write phase stored without keeping any
    of it in memory.
    """
    if size < 0:
        raise ValueError(f"field size must be non-negative, got {size}")
    return PatternPayload(size, seed=_seed_from_key(key))


def synthesize_field(key: FieldKey, grid: GaussianGrid = GaussianGrid()) -> BytesPayload:
    """A physically-shaped float32 field for the given key.

    The field is a zonal-mean profile plus a few planetary waves plus
    small-scale noise — enough structure that the examples' plots and
    statistics look like weather, while remaining fully deterministic in
    the key.
    """
    rng = np.random.Generator(np.random.PCG64(_seed_from_key(key)))
    lat = np.linspace(-90.0, 90.0, grid.n_lat, dtype=np.float32)[:, None]
    lon = np.linspace(0.0, 360.0, grid.n_lon, endpoint=False, dtype=np.float32)[None, :]
    # Zonal mean: warm equator, cold poles (scaled arbitrarily per param).
    base = 288.0 - 50.0 * np.sin(np.deg2rad(lat)) ** 2
    # Planetary waves with random phases.
    waves = np.zeros((grid.n_lat, grid.n_lon), dtype=np.float32)
    for wavenumber in (1, 2, 3, 5):
        amplitude = rng.uniform(1.0, 6.0) / wavenumber
        phase = rng.uniform(0.0, 360.0)
        waves += (
            amplitude
            * np.cos(np.deg2rad(wavenumber * (lon + phase)))
            * np.cos(np.deg2rad(lat))
        ).astype(np.float32)
    noise = rng.normal(0.0, 0.5, size=(grid.n_lat, grid.n_lon)).astype(np.float32)
    data = (base + waves + noise).astype(np.float32)
    return BytesPayload(data.tobytes())
