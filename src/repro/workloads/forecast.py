"""Forecast run descriptors.

A :class:`ForecastSpec` describes one model run — the most-significant key
plus the parameter/level/step ranges it outputs — and enumerates the full
set of field keys, the way ECMWF's 4-times-daily operational runs do (§1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Tuple

from repro.fdb.key import FieldKey
from repro.workloads.fields import PRESSURE_LEVELS, UPPER_AIR_PARAMS

__all__ = ["ForecastSpec"]


@dataclass(frozen=True)
class ForecastSpec:
    """One forecast: identity plus output inventory."""

    date: str = "20260705"
    time: str = "00"
    klass: str = "od"
    stream: str = "oper"
    expver: str = "0001"
    params: Tuple[str, ...] = UPPER_AIR_PARAMS
    levels: Tuple[str, ...] = PRESSURE_LEVELS
    steps: Tuple[str, ...] = field(
        default_factory=lambda: tuple(str(s) for s in range(0, 25, 6))
    )
    levtype: str = "pl"
    type: str = "fc"

    def msk(self) -> FieldKey:
        """The most-significant (forecast identity) key."""
        return FieldKey(
            {
                "class": self.klass,
                "stream": self.stream,
                "expver": self.expver,
                "date": self.date,
                "time": self.time,
            }
        )

    def field_keys(self) -> Iterator[FieldKey]:
        """Every field key this forecast outputs, steps outermost.

        Step-major order matches how a model emits data: all fields of step
        0, then all fields of step 6, and so on.
        """
        base = self.msk()
        for step in self.steps:
            for level in self.levels:
                for param in self.params:
                    yield base.merged(
                        {
                            "type": self.type,
                            "levtype": self.levtype,
                            "levelist": level,
                            "param": param,
                            "step": step,
                        }
                    )

    @property
    def n_fields(self) -> int:
        return len(self.params) * len(self.levels) * len(self.steps)

    def partition(self, n_writers: int) -> Sequence[Sequence[FieldKey]]:
        """Round-robin split of the field keys over ``n_writers`` I/O servers."""
        if n_writers < 1:
            raise ValueError(f"need >= 1 writers, got {n_writers}")
        shards: list[list[FieldKey]] = [[] for _ in range(n_writers)]
        for index, key in enumerate(self.field_keys()):
            shards[index % n_writers].append(key)
        return shards
