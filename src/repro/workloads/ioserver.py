"""The NWP I/O-server pipeline of §1.2.

At ECMWF the model's ~2500 compute nodes do not talk to storage: fields
travel over the low-latency interconnect to ~250 dedicated I/O-server
nodes, are aggregated and encoded there, and only then flow into the
object store; post-processing reads each step's output as soon as the step
lands.  This module reproduces that three-stage pipeline on the simulated
fabric:

    model ranks --(p2p fabric flows)--> I/O servers --(FDB archive)--> DAOS
                                                   \\--(step-complete)--> product readers

Model ranks and I/O servers are both *client* processes of the storage
system (compute nodes in real life); the model→server hop uses the same
adapters and rails as storage traffic, so heavy field fan-in genuinely
competes with the archive stream, as it does in production.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.metrics import global_timing_bandwidth
from repro.bench.timestamps import IoRecord, TimestampLog
from repro.daos.system import DaosSystem
from repro.fdb.fieldio import FieldIO
from repro.fdb.key import FieldKey
from repro.hardware.topology import Cluster
from repro.simulation.resources import Store
from repro.units import MiB
from repro.workloads.fields import field_payload
from repro.workloads.forecast import ForecastSpec

__all__ = ["PipelineParams", "PipelineResult", "run_pipeline"]


@dataclass(frozen=True)
class PipelineParams:
    """Shape of one model-output pipeline run."""

    n_model_ranks: int = 8
    n_io_servers: int = 4
    n_readers: int = 4
    field_size: int = 2 * MiB
    #: Per-field encoding cost at the I/O server (GRIB encoding CPU time).
    encode_time: float = 200e-6
    #: Simulated interval between a model rank's successive field emissions
    #: (compute time between outputs; 0 = emit as fast as the pipe drains).
    produce_interval: float = 0.0

    def __post_init__(self) -> None:
        if self.n_model_ranks < 1 or self.n_io_servers < 1 or self.n_readers < 1:
            raise ValueError("pipeline needs at least one of each process kind")
        if self.field_size < 1:
            raise ValueError("field size must be positive")
        if self.encode_time < 0 or self.produce_interval < 0:
            raise ValueError("times must be non-negative")


@dataclass
class PipelineResult:
    """Timing and throughput of one pipeline run."""

    params: PipelineParams
    forecast: ForecastSpec
    cycle_time: float
    #: Simulated completion time of each step's archive (step -> time).
    step_completion: Dict[str, float]
    write_log: TimestampLog
    read_log: TimestampLog

    @property
    def archive_bandwidth(self) -> float:
        return global_timing_bandwidth(self.write_log)

    @property
    def read_bandwidth(self) -> float:
        return global_timing_bandwidth(self.read_log)

    @property
    def aggregated_bandwidth(self) -> float:
        return self.archive_bandwidth + self.read_bandwidth


def _model_rank(cluster: Cluster, rank: int, my_addr, server_addrs, keys, params, inboxes):
    """A model rank: emit its fields to their assigned I/O servers."""
    sim = cluster.sim
    provider = cluster.provider
    for index, key in enumerate(keys):
        if params.produce_interval > 0.0:
            yield sim.timeout(params.produce_interval)
        server_index = (rank + index) % len(server_addrs)
        path = cluster.fabric.p2p_path(my_addr, server_addrs[server_index])
        yield cluster.net.transfer(
            path, params.field_size, rate_cap=provider.per_flow_cap,
            name=f"field:{rank}:{index}",
        )
        inboxes[server_index].put(key)


def _io_server(
    fieldio: FieldIO,
    inbox: Store,
    n_expected: int,
    params: PipelineParams,
    write_log: TimestampLog,
    server_index: int,
    archived: Store,
):
    """One I/O server: receive, encode, archive, announce."""
    sim = fieldio.client.sim
    for count in range(n_expected):
        key = yield inbox.get()
        if params.encode_time > 0.0:
            yield sim.timeout(params.encode_time)
        start = sim.now
        yield from fieldio.write(key, field_payload(key, params.field_size))
        write_log.add(
            IoRecord(
                node=0, rank=server_index, iteration=count, op="write",
                size=params.field_size, io_start=start, io_end=sim.now,
            )
        )
        archived.put(key)


def _reader(
    fieldio: FieldIO,
    archived: Store,
    n_expected: int,
    params: PipelineParams,
    read_log: TimestampLog,
    reader_index: int,
    step_completion: Dict[str, float],
    per_step_remaining: Dict[str, int],
):
    """One product reader: fetch each field as its archive lands."""
    sim = fieldio.client.sim
    for count in range(n_expected):
        key = yield archived.get()
        start = sim.now
        payload = yield from fieldio.read(key)
        if payload.size != params.field_size:
            raise AssertionError(
                f"reader {reader_index} got {payload.size} B for {key.canonical()!r}"
            )
        read_log.add(
            IoRecord(
                node=0, rank=reader_index, iteration=count, op="read",
                size=params.field_size, io_start=start, io_end=sim.now,
            )
        )
        step = key["step"]
        per_step_remaining[step] -= 1
        if per_step_remaining[step] == 0:
            step_completion[step] = sim.now


def run_pipeline(
    cluster: Cluster,
    system: DaosSystem,
    pool,
    forecast: ForecastSpec,
    params: Optional[PipelineParams] = None,
) -> PipelineResult:
    """Run one forecast through the model → I/O server → reader pipeline."""
    params = params or PipelineParams()
    total_procs = params.n_model_ranks + params.n_io_servers + params.n_readers
    nodes = cluster.config.n_client_nodes
    per_node = -(-total_procs // nodes)  # ceil: pack everything on the clients
    addresses = cluster.client_addresses(per_node)
    model_addrs = addresses[: params.n_model_ranks]
    server_addrs = addresses[
        params.n_model_ranks : params.n_model_ranks + params.n_io_servers
    ]
    reader_addrs = addresses[
        params.n_model_ranks + params.n_io_servers : total_procs
    ]

    bootstrap = system.make_client(addresses[0])
    cluster.sim.run(until=cluster.sim.process(FieldIO.bootstrap(bootstrap, pool)))

    keys: List[FieldKey] = list(forecast.field_keys())
    shards = forecast.partition(params.n_model_ranks)
    # Fields land on servers round-robin from each rank: count expectations.
    expected_per_server = [0] * params.n_io_servers
    for rank, shard in enumerate(shards):
        for index in range(len(shard)):
            expected_per_server[(rank + index) % params.n_io_servers] += 1

    inboxes = [Store(cluster.sim, name=f"ioserver{i}") for i in range(params.n_io_servers)]
    archived = Store(cluster.sim, name="archived")
    write_log = TimestampLog()
    read_log = TimestampLog()
    step_completion: Dict[str, float] = {}
    per_step_remaining = {
        step: len(forecast.params) * len(forecast.levels) for step in forecast.steps
    }

    start = cluster.sim.now
    processes = []
    for rank, shard in enumerate(shards):
        processes.append(
            cluster.sim.process(
                _model_rank(
                    cluster, rank, model_addrs[rank], server_addrs, shard,
                    params, inboxes,
                ),
                name=f"model:{rank}",
            )
        )
    for server_index in range(params.n_io_servers):
        fieldio = FieldIO(system.make_client(server_addrs[server_index]), pool)
        processes.append(
            cluster.sim.process(
                _io_server(
                    fieldio, inboxes[server_index],
                    expected_per_server[server_index], params, write_log,
                    server_index, archived,
                ),
                name=f"ioserver:{server_index}",
            )
        )
    base, extra = divmod(len(keys), params.n_readers)
    for reader_index in range(params.n_readers):
        fieldio = FieldIO(system.make_client(reader_addrs[reader_index]), pool)
        expected = base + (1 if reader_index < extra else 0)
        processes.append(
            cluster.sim.process(
                _reader(
                    fieldio, archived, expected, params, read_log,
                    reader_index, step_completion, per_step_remaining,
                ),
                name=f"reader:{reader_index}",
            )
        )
    cluster.sim.run(until=cluster.sim.all_of(processes))

    return PipelineResult(
        params=params,
        forecast=forecast,
        cycle_time=cluster.sim.now - start,
        # Report step completions relative to the cycle start, like the
        # cycle time itself.
        step_completion={step: t - start for step, t in step_completion.items()},
        write_log=write_log,
        read_log=read_log,
    )
