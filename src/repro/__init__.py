"""Reproduction of "DAOS as HPC Storage: a View From Numerical Weather
Prediction" (Manubens, Quintino, Smart, Danovaro, Jackson — IPPS 2023).

The package simulates the paper's full experimental stack in Python:

* :mod:`repro.simulation` — a deterministic discrete-event kernel;
* :mod:`repro.network` — fluid-flow bandwidth sharing, the dual-rail
  OmniPath fabric, and the OFI TCP/PSM2 provider models;
* :mod:`repro.hardware` — Optane DCPMM (SCM) and NEXTGenIO-style nodes;
* :mod:`repro.daos` — a functional + timed DAOS: pools, containers, KV and
  Array objects, object classes/striping, engines and targets;
* :mod:`repro.fdb` — the FDB5-style weather-field object store (Algorithms
  1 and 2) and its three benchmark modes;
* :mod:`repro.workloads` — synthetic weather fields and NWP key streams;
* :mod:`repro.bench` — IOR (segments mode), the Field I/O benchmark,
  MPI point-to-point, and the §5.5 bandwidth metrics;
* :mod:`repro.experiments` — drivers regenerating every table and figure.

Quickstart::

    from repro.fdb import FDB

    fdb = FDB()
    key = {"class": "od", "stream": "oper", "expver": "0001",
           "date": "20260705", "time": "00", "type": "fc",
           "levtype": "pl", "levelist": "500", "param": "t", "step": "6"}
    fdb.archive(key, b"...field bytes...")
    assert fdb.retrieve(key) == b"...field bytes..."
"""

from repro.config import (
    ClusterConfig,
    DaosServiceConfig,
    HardwareConfig,
    PSM2_PROVIDER,
    ProviderSpec,
    TCP_PROVIDER,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "DaosServiceConfig",
    "HardwareConfig",
    "ProviderSpec",
    "TCP_PROVIDER",
    "PSM2_PROVIDER",
    "__version__",
]
