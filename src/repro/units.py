"""Size and time unit helpers used throughout the package.

Sizes are plain ``int`` byte counts; simulated time is a ``float`` number of
seconds.  Keeping both as primitives (rather than wrapper types) keeps the
discrete-event hot paths cheap, so this module only provides well-named
constants and a few formatting/parsing helpers.
"""

from __future__ import annotations

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "USEC",
    "MSEC",
    "bytes_per_sec_to_gib",
    "gib_per_sec_to_bytes",
    "format_size",
    "format_bandwidth",
    "parse_size",
]

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

#: One microsecond, in simulated seconds.
USEC: float = 1e-6
#: One millisecond, in simulated seconds.
MSEC: float = 1e-3

_SUFFIXES = (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB), ("B", 1))


def bytes_per_sec_to_gib(rate: float) -> float:
    """Convert a rate in bytes/second to GiB/second."""
    return rate / GiB


def gib_per_sec_to_bytes(rate: float) -> float:
    """Convert a rate in GiB/second to bytes/second."""
    return rate * GiB


def format_size(nbytes: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``5242880 -> '5.0 MiB'``."""
    for suffix, factor in _SUFFIXES:
        if abs(nbytes) >= factor or factor == 1:
            value = nbytes / factor
            if value == int(value):
                return f"{int(value)} {suffix}"
            return f"{value:.1f} {suffix}"
    raise AssertionError("unreachable")


def format_bandwidth(bytes_per_sec: float) -> str:
    """Render a bandwidth in GiB/s with two decimals, as the paper reports."""
    return f"{bytes_per_sec / GiB:.2f} GiB/s"


def parse_size(text: str) -> int:
    """Parse a human size string (``'5MiB'``, ``'1 GiB'``, ``'100'``) to bytes.

    Raises ``ValueError`` for malformed input or negative sizes.
    """
    s = text.strip()
    for suffix, factor in _SUFFIXES:
        if s.endswith(suffix):
            number = s[: -len(suffix)].strip()
            value = float(number)
            break
    else:
        value = float(s)
        factor = 1
    if value < 0:
        raise ValueError(f"size must be non-negative: {text!r}")
    result = value * factor
    if result != int(result):
        raise ValueError(f"size must resolve to a whole number of bytes: {text!r}")
    return int(result)
