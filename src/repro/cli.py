"""Command-line interface: ``repro-nwp`` / ``python -m repro``.

Subcommands:

* ``run <experiment>`` — run one of the paper's experiments (table1, table2,
  fig3..fig7) and print the regenerated table/series.
* ``list`` — list available experiments.
* ``all`` — run every experiment in order.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-nwp",
        description=(
            "Reproduction of 'DAOS as HPC Storage: a View From Numerical "
            "Weather Prediction' (IPPS 2023)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_common(run_parser)

    sub.add_parser("list", help="list available experiments")

    all_parser = sub.add_parser("all", help="run every experiment")
    _add_common(all_parser)
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="run the full parameter grids of the paper (slow)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    scale = "paper" if args.paper_scale else "ci"
    names = sorted(EXPERIMENTS) if args.command == "all" else [args.experiment]
    for name in names:
        start = time.time()
        result = run_experiment(name, scale=scale, seed=args.seed)
        print(result.render())
        print(f"[{name}: {time.time() - start:.1f}s wall]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    sys.exit(main())
