"""Command-line interface: ``repro-nwp`` / ``python -m repro``.

Subcommands:

* ``run <experiment>`` — run one of the paper's experiments (table1, table2,
  fig3..fig7) and print the regenerated table/series.
* ``list`` — list available experiments.
* ``all`` — run every experiment in order.
* ``bench`` — run the kernel perf harness (simulator speed, not simulated
  bandwidth) and write ``BENCH_kernel.json``; ``--profile`` prints a
  cProfile breakdown of the hottest scenario, ``--quick`` runs a
  seconds-scale variant suitable for CI smoke checks.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.backends.registry import BACKENDS
from repro.experiments.registry import EXPERIMENTS, run_experiment, supports_backend

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-nwp",
        description=(
            "Reproduction of 'DAOS as HPC Storage: a View From Numerical "
            "Weather Prediction' (IPPS 2023)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_common(run_parser)

    sub.add_parser("list", help="list available experiments")

    all_parser = sub.add_parser("all", help="run every experiment")
    _add_common(all_parser)

    bench_parser = sub.add_parser(
        "bench", help="run the kernel perf harness (simulator speed)"
    )
    bench_parser.add_argument(
        "--quick", action="store_true", help="seconds-scale sizes (CI smoke)"
    )
    bench_parser.add_argument(
        "--profile",
        action="store_true",
        help="print a cProfile breakdown of the many-flow scenario",
    )
    bench_parser.add_argument(
        "--repeat", type=int, default=1, help="repeats per scenario (report min)"
    )
    bench_parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="run only this scenario (repeatable)",
    )
    bench_parser.add_argument(
        "--json",
        type=Path,
        default=Path("BENCH_kernel.json"),
        metavar="PATH",
        help="where to write the results payload (default: BENCH_kernel.json)",
    )
    bench_parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="previous BENCH_kernel.json to compute speedups against",
    )
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="run the full parameter grids of the paper (slow)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="daos",
        help="storage backend to simulate (default: daos)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for grid points (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(".repro-cache"),
        metavar="DIR",
        help="persistent result cache directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "collect the structured simulation trace (RPC spans, model "
            "events) across the run and write it as JSON lines"
        ),
    )


def _run_bench(args: argparse.Namespace) -> int:
    from repro.bench.kernel_perf import SCENARIOS
    from repro.bench.runner import run_kernel_benchmarks, write_kernel_bench

    if args.scenarios:
        unknown = [name for name in args.scenarios if name not in SCENARIOS]
        if unknown:
            print(
                f"error: unknown scenario(s): {', '.join(unknown)}; "
                f"available: {', '.join(SCENARIOS)}",
                file=sys.stderr,
            )
            return 2
    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    if args.baseline is not None and not args.baseline.exists():
        print(f"error: baseline file not found: {args.baseline}", file=sys.stderr)
        return 2

    if args.profile:
        import cProfile
        import pstats

        from repro.bench.kernel_perf import run_scenario

        profiler = cProfile.Profile()
        profiler.enable()
        run_scenario("many_flow_contention", quick=args.quick)
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)

    payload = run_kernel_benchmarks(
        quick=args.quick, repeats=args.repeat, scenarios=args.scenarios
    )
    payload = write_kernel_bench(payload, args.json, baseline=args.baseline)
    if payload.get("baseline", {}).get("size_mismatch"):
        print(
            "note: baseline used different scenario sizes (quick flag "
            "differs); speedups omitted"
        )
    for name, entry in payload["scenarios"].items():
        speedup = payload.get("speedup", {}).get(name)
        suffix = f"  ({speedup:.2f}x vs baseline)" if speedup else ""
        print(
            f"{name:24s} {entry['wall_s']:8.3f}s wall  "
            f"{entry['sim_time']:10.4f}s simulated  digest {entry['digest'][:12]}{suffix}"
        )
    print(f"wrote {args.json}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.command == "bench":
        return _run_bench(args)
    scale = "paper" if args.paper_scale else "ci"
    names = sorted(EXPERIMENTS) if args.command == "all" else [args.experiment]

    from repro.experiments.cache import SIMULATOR_VERSION_SALT, open_cache
    from repro.experiments.runner import ExecOptions, exec_options

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.trace_out is not None and (args.jobs > 1 or not args.no_cache):
        # The global tracer lives in this process: grid points computed by
        # pool workers or served from cache would silently escape it, so a
        # traced run is always serial and uncached.
        print(
            "warning: --trace-out forces serial, uncached execution "
            "(--jobs 1 --no-cache)",
            file=sys.stderr,
        )
        args.jobs = 1
        args.no_cache = True
    if args.backend != "daos":
        unsupported = [n for n in names if not supports_backend(n, args.backend)]
        if args.command == "run" and unsupported:
            print(
                f"error: experiment {unsupported[0]!r} supports only the "
                f"daos backend",
                file=sys.stderr,
            )
            return 2
        names = [n for n in names if n not in unsupported]
    else:
        unsupported = []
    cache = None if args.no_cache else open_cache(args.cache_dir)
    options = ExecOptions(
        jobs=args.jobs, cache=cache, progress=sys.stderr.isatty()
    )
    # Reproducibility header: results files regenerated via redirection carry
    # the exact execution settings they were produced with.
    print(f"# experiments: {' '.join(names)}")
    print(f"# scale: {scale}  seed: {args.seed}  jobs: {args.jobs}")
    if args.backend != "daos":
        # Conditional so DAOS-default results files stay byte-identical.
        print(f"# backend: {args.backend}")
        for name in unsupported:
            print(f"# skipped (daos-only): {name}")
    cache_desc = "disabled" if cache is None else str(cache.root)
    print(f"# cache: {cache_desc}  salt: {SIMULATOR_VERSION_SALT}")
    print()

    tracer = None
    if args.trace_out is not None:
        # Experiments build their Clusters (and Simulators) internally, so
        # tracing is enabled process-wide: every Simulator created while the
        # global tracer is installed records into it.
        from repro.simulation.trace import install_global_tracer, uninstall_global_tracer

        tracer = install_global_tracer()
    try:
        with exec_options(options):
            for name in names:
                start = time.time()
                result = run_experiment(
                    name, scale=scale, seed=args.seed, backend=args.backend
                )
                print(result.render())
                print(f"[{name}: {time.time() - start:.1f}s wall]")
                print()
    finally:
        if tracer is not None:
            uninstall_global_tracer()
            count = tracer.dump_jsonl(str(args.trace_out))
            print(f"wrote {count} trace records to {args.trace_out}")
    if cache is not None:
        print(f"# cache: {cache.stats_line()}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    sys.exit(main())
