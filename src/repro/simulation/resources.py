"""Shared-resource primitives: capacity-limited resources, mutexes, stores.

These follow the usual process-interaction idiom::

    with_req = resource.request()
    yield with_req
    try:
        ... hold the resource ...
    finally:
        resource.release(with_req)

All queues are strict FIFO, which keeps the simulation deterministic and
models the request queues in front of DAOS targets and pool services.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque

from repro.simulation.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.core import Simulator

__all__ = ["Resource", "Mutex", "Store"]


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO wait queue.

    Models a pool of service threads: a DAOS target's xstream group, a pool
    service, or a node's NIC DMA engines.
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_waiters", "_request_name")

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Hot path: request() runs per RPC, so the event name is built once.
        self._request_name = f"{name}:request"

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that triggers once a slot is held.

        The slot is held from the moment the event triggers until
        :meth:`release` is called with the same event.
        """
        event = Event(self.sim, name=self._request_name)
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def try_acquire(self) -> bool:
        """Claim a free slot without allocating a grant event.

        Returns ``True`` (slot held, release with :meth:`release_direct`)
        exactly when :meth:`request` would have granted immediately.  Used
        by the metadata fast path to elide uncontended grant events; callers
        must only do so when the simulator instant is settled
        (:meth:`~repro.simulation.core.Simulator.settled`), otherwise grant
        ordering against same-instant events could differ from the event
        path.
        """
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return True
        return False

    def release_direct(self) -> None:
        """Release a slot claimed via :meth:`try_acquire` (FIFO handoff kept)."""
        if self._in_use <= 0:
            raise RuntimeError(f"release_direct() on idle resource {self.name!r}")
        self._in_use -= 1
        self._grant_next()

    def release(self, request: Event) -> None:
        """Release the slot held via ``request``.

        A queued request that has not yet been granted may also be passed,
        which cancels it.
        """
        if not request.triggered:
            # Cancel a queued request.
            try:
                self._waiters.remove(request)
            except ValueError:
                raise RuntimeError("release() of a request not issued here") from None
            # Mark it failed-but-handled so a waiting process (if any) learns.
            request._ok = True
            request._value = None
            request.callbacks = None
            return
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        self._grant_next()

    def _grant_next(self) -> None:
        while self._waiters and self._in_use < self.capacity:
            waiter = self._waiters.popleft()
            self._in_use += 1
            waiter.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity} busy, "
            f"{len(self._waiters)} queued>"
        )


class Mutex(Resource):
    """A single-slot resource; convenience alias with lock/unlock naming."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        super().__init__(sim, capacity=1, name=name)

    def acquire(self) -> Event:
        return self.request()

    def locked(self) -> bool:
        return self._in_use > 0


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``.

    ``put`` never blocks (the store is unbounded — back-pressure in the
    models is exercised through :class:`Resource`/bandwidth instead).
    ``get`` returns an event that triggers with the next item.
    """

    __slots__ = ("sim", "name", "_items", "_getters", "_get_name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._get_name = f"{name}:get"

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append an item, waking the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event triggering with the next item (FIFO)."""
        event = Event(self.sim, name=self._get_name)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Store {self.name!r} {len(self._items)} items, "
            f"{len(self._getters)} waiting>"
        )
