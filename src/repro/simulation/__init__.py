"""Deterministic discrete-event simulation kernel.

This subpackage provides the substrate the rest of :mod:`repro` runs on: a
priority-queue event loop (:class:`~repro.simulation.core.Simulator`),
generator-based simulated processes (:class:`~repro.simulation.process.Process`),
waitable events and composite conditions, and shared-resource primitives
(mutexes, capacity-limited resources, FIFO stores).

The kernel is intentionally SimPy-flavoured so the higher layers read like
ordinary process-interaction simulation code, but it is implemented from
scratch and guarantees *determinism*: same seed, same program, same trace —
ties in time are broken by scheduling sequence number.
"""

from repro.simulation.core import Simulator, StopSimulation
from repro.simulation.events import (
    AllOf,
    AnyOf,
    ConditionValue,
    Event,
    Interrupt,
    Timeout,
)
from repro.simulation.process import Process
from repro.simulation.resources import Mutex, Resource, Store
from repro.simulation.rng import RngRegistry
from repro.simulation.trace import TraceRecord, Tracer

__all__ = [
    "Simulator",
    "StopSimulation",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Interrupt",
    "Process",
    "Resource",
    "Mutex",
    "Store",
    "RngRegistry",
    "Tracer",
    "TraceRecord",
]
