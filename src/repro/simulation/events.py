"""Waitable events for the simulation kernel.

An :class:`Event` is the unit of synchronisation: processes ``yield`` events
and are resumed when the event is *triggered*.  :class:`Timeout` is an event
pre-scheduled to trigger after a delay.  :class:`AllOf`/:class:`AnyOf`
combine events; :class:`Interrupt` is the exception thrown into a process
that another process interrupts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.core import Simulator

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Interrupt",
]


class _PendingType:
    """Sentinel for "event has no value yet"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


PENDING = _PendingType()


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot waitable occurrence.

    Lifecycle: *pending* -> *triggered* (``succeed``/``fail``) -> *processed*
    (callbacks run by the simulator).  Triggering twice is an error; waiting
    on an already-processed event resumes the waiter immediately on the next
    simulator step.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "name")

    #: Value a time-scheduled event (Timeout) assumes when it fires; the
    #: simulator copies it into ``_value`` when popping a still-pending event
    #: from the queue, so a Timeout does not read as *triggered* before its
    #: due time.
    _delayed_value: Any = None

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        #: Callbacks run when the event is processed; ``None`` once processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True
        self._defused = False

    # -- state inspection --------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue_triggered(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event will have ``exception`` raised at
        its ``yield``.  If nothing ever waits, the simulator re-raises the
        exception at the end of the step (unless :meth:`defuse` was called),
        so failures cannot pass silently.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() expects an exception, got {exception!r}")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue_triggered(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator will not re-raise."""
        self._defused = True

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event is already processed the callback is invoked
        immediately (synchronously).
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay", "_delayed_value")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None, name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative, got {delay}")
        # ``Event.__init__`` inlined: every simulated service time and every
        # flow-network wake allocates a Timeout, making this the hottest
        # constructor in the kernel.
        self.sim = sim
        self.name = name
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self.delay = delay
        self._delayed_value = value
        sim._schedule(delay, self)


class ConditionValue:
    """Ordered mapping of the events a condition collected, with their values.

    Behaves like a read-only dict keyed by the original :class:`Event`
    objects, preserving the order events were given to the condition.
    """

    __slots__ = ("events",)

    def __init__(self, events: List[Event]) -> None:
        self.events = events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def keys(self) -> List[Event]:
        return list(self.events)

    def values(self) -> List[Any]:
        return [e.value for e in self.events]

    def items(self) -> List[tuple]:
        return [(e, e.value) for e in self.events]

    def todict(self) -> dict:
        return dict(self.items())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event over a list of events with a pluggable evaluator.

    ``evaluate(events, n_done)`` returns True when the condition is
    satisfied.  A failing constituent event fails the whole condition.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        sim: "Simulator",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self._events:
            if event.sim is not sim:
                raise ValueError("all events of a condition must share a simulator")

        if not self._events or self._evaluate(self._events, 0):
            self.succeed(ConditionValue(self._collect()))
            return
        # Inlined add_callback: conditions over 100k events are built in
        # one go at storm scale, so the per-event method call matters.
        check = self._check
        for event in self._events:
            callbacks = event.callbacks
            if callbacks is None:
                check(event)
            else:
                callbacks.append(check)

    def _collect(self) -> List[Event]:
        return [e for e in self._events if e.triggered]

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            if not event._ok:
                event.defuse()
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event.value)
        elif self._evaluate(self._events, self._count):
            self.succeed(ConditionValue(self._collect()))


def _all_events(events: List[Event], count: int) -> bool:
    return count >= len(events)


def _any_events(events: List[Event], count: int) -> bool:
    return count > 0


class AllOf(Condition):
    """Event triggered when *all* constituent events have succeeded."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, _all_events, events)


class AnyOf(Condition):
    """Event triggered when *any* constituent event has succeeded."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, _any_events, events)
