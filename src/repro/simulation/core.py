"""The simulator event loop.

:class:`Simulator` owns simulated time and a pending-event queue of
triggered events.  Events are processed in ``(time, sequence)`` order,
making runs fully deterministic: two events triggered for the same instant
are processed in the order they were scheduled.

Two interchangeable queue implementations back the loop:

* a **binary heap** (``heapq``) — optimal for the small pending sets of
  ordinary runs;
* a **calendar queue** (:class:`CalendarQueue`) — amortised O(1)
  push/pop under storm load, when hundreds of thousands of events are
  pending and every heap operation pays an O(log n) sift through them.

``scheduler="auto"`` (the default) starts on the heap and migrates to the
calendar queue once the pending count crosses ``_WHEEL_ON`` (and back below
``_WHEEL_OFF``); ``"heap"``/``"wheel"`` pin one implementation, as does the
``REPRO_SCHEDULER`` environment variable.  Both orders are exactly
``(time, sequence)`` — the golden digests cannot tell them apart (enforced
by ``tests/simulation/test_scheduler_identity.py``).
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heapify, heappop, heappush
from itertools import count
from math import inf as _INF
from typing import Any, Generator, Iterable, List, Optional, Tuple

from repro.simulation.events import PENDING, AllOf, AnyOf, Event, Timeout
from repro.simulation.process import Process
from repro.simulation.rng import RngRegistry
from repro.simulation.trace import Tracer, global_tracer

__all__ = ["CalendarQueue", "Simulator", "StopSimulation"]

#: Pending-event population at which ``scheduler="auto"`` migrates the queue
#: onto the calendar wheel, and back off it.  The wide hysteresis band keeps
#: workloads hovering around the boundary from thrashing between
#: representations (mirrors ``_VEC_ON``/``_VEC_OFF`` in the flow solver).
_WHEEL_ON = 4096
_WHEEL_OFF = 512

#: Calendar day granularity: pending times are bucketed into integer days of
#: 1/4096 s.  Any granularity is *correct* (order is always (time, seq));
#: this one keeps same-instant storms in one day while bounding the number
#: of distinct days a paper-scale run can populate.
_DAYS_PER_SECOND = 4096.0


def _env_scheduler() -> str:
    """Scheduler forced by ``REPRO_SCHEDULER`` (``auto`` when unset)."""
    value = os.environ.get("REPRO_SCHEDULER", "")
    if value in ("", "0", "auto"):
        return "auto"
    if value in ("heap", "wheel"):
        return value
    raise ValueError(
        f"REPRO_SCHEDULER must be 'heap', 'wheel' or 'auto', got {value!r}"
    )


class CalendarQueue:
    """Calendar-queue event scheduler with exact ``(time, seq)`` order.

    Entries are the same ``(time, seq, event)`` tuples the heap path uses.
    Time is quantised into integer *days* (``int(time * _DAYS_PER_SECOND)``);
    each pending day keeps an append-only list of its entries in a dict
    keyed by day number, and a small binary heap orders the *distinct* day
    numbers only.  The earliest day is drained through ``_run``, a sorted
    list with a consumed-prefix cursor.

    Why this beats the heap under storm load: a synchronised wave parks
    10^5 events on a handful of distinct days, so pushes are plain list
    appends (no O(log n) sift through the whole pending set), each day is
    sorted once on first touch (timsort, near-linear on the
    sequence-ordered appends), and same-instant follow-up events — the
    dominant pattern, since triggered events are enqueued for *now* —
    binary-insert at the tail of the current run.  In the sparse regime the
    structure degrades gracefully to a heap over days, never worse than
    O(log n) per operation.

    Ordering is exact for *any* day width: an entry never leaves its day
    out of order, days are visited in ascending order, and late pushes into
    the current or an earlier day (always at a time >= the last pop, since
    simulated time cannot run backwards) are merged into the run by binary
    insertion.  Non-finite times sort after every finite day.
    """

    __slots__ = ("_days", "_dayheap", "_run", "_rpos", "_run_day", "_size", "_inv")

    def __init__(self, inv_width: float = _DAYS_PER_SECOND) -> None:
        #: day number -> unsorted list of entries (days beyond ``_run_day``).
        self._days: dict = {}
        #: heap of the distinct day numbers present in ``_days``.
        self._dayheap: List[Any] = []
        #: sorted entries of every day <= ``_run_day``; ``_rpos`` is the
        #: consumed prefix.
        self._run: List[Tuple[float, int, "Event"]] = []
        self._rpos = 0
        self._run_day: Any = -(1 << 62)
        self._size = 0
        self._inv = inv_width

    def __len__(self) -> int:
        return self._size

    def push(self, entry: Tuple[float, int, "Event"]) -> None:
        """Insert one ``(time, seq, event)`` entry."""
        try:
            day = int(entry[0] * self._inv)
        except OverflowError:  # +inf: after every finite day
            day = _INF
        if day <= self._run_day:
            # The run is sorted and everything before _rpos has already
            # been popped; time monotonicity guarantees the entry lands at
            # or after the cursor, so the binary search can skip the
            # consumed prefix.
            insort(self._run, entry, self._rpos)
        else:
            bucket = self._days.get(day)
            if bucket is None:
                self._days[day] = [entry]
                heappush(self._dayheap, day)
            else:
                bucket.append(entry)
        self._size += 1

    def _advance(self) -> None:
        """Replace the exhausted run with the next pending day's entries."""
        day = heappop(self._dayheap)
        entries = self._days.pop(day)
        entries.sort()
        self._run = entries
        self._rpos = 0
        self._run_day = day

    def peek(self) -> float:
        """Time of the earliest pending entry, or ``inf`` when empty."""
        if self._rpos >= len(self._run):
            if not self._size:
                return _INF
            self._advance()
        return self._run[self._rpos][0]

    def pop(self) -> Tuple[float, int, "Event"]:
        """Remove and return the earliest entry (exact (time, seq) order)."""
        if self._rpos >= len(self._run):
            if not self._size:
                raise IndexError("pop from an empty CalendarQueue")
            self._advance()
        entry = self._run[self._rpos]
        self._rpos += 1
        self._size -= 1
        return entry

    def drain(self) -> List[Tuple[float, int, "Event"]]:
        """Remove and return all remaining entries (in no particular order)."""
        out = self._run[self._rpos :]
        for bucket in self._days.values():
            out.extend(bucket)
        self._days.clear()
        self._dayheap.clear()
        self._run = []
        self._rpos = 0
        self._size = 0
        return out


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""


def _raise_stop(event: Event) -> None:
    """Sentinel callback for ``run(until=event)``.

    A module-level function instead of a per-run closure: ``run`` is called
    once per benchmark phase, but the callback travels with the event and a
    fresh closure per call is allocation the hot path does not need.
    """
    raise StopSimulation(event)


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the simulator's :class:`RngRegistry`.  Every source
        of randomness in a model should draw from ``sim.rng`` streams so a
        run is reproducible from this single value.
    trace:
        When True, a :class:`Tracer` collects structured records that models
        emit via :meth:`record`.
    scheduler:
        ``"auto"`` (default) starts on the binary heap and migrates to the
        calendar queue when the pending population crosses ``_WHEEL_ON``
        (returning below ``_WHEEL_OFF``); ``"heap"`` / ``"wheel"`` pin one
        implementation for the whole run.  ``REPRO_SCHEDULER`` overrides
        this argument when set to ``heap`` or ``wheel``.
    """

    def __init__(
        self, seed: int = 0, trace: bool = False, scheduler: str = "auto"
    ) -> None:
        self._now: float = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = count()
        self._flush: List[Any] = []
        self._running = False
        #: Freelist of recycled fast-lane events (see :meth:`lane_acquire`).
        self._lane_free: List[Event] = []
        mode = _env_scheduler()
        if mode == "auto":
            mode = scheduler
        if mode not in ("auto", "heap", "wheel"):
            raise ValueError(
                f"scheduler must be 'auto', 'heap' or 'wheel', got {scheduler!r}"
            )
        self._auto = mode == "auto"
        self._wheel: Optional[CalendarQueue] = (
            CalendarQueue() if mode == "wheel" else None
        )
        #: Number of heap<->wheel migrations performed by ``scheduler="auto"``.
        self.scheduler_switches = 0
        self.rng = RngRegistry(seed)
        # trace=True gets a private tracer; otherwise fall back to the
        # process-wide tracer when one is installed (see ``--trace-out``).
        self.tracer: Optional[Tracer] = Tracer() if trace else global_tracer()

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduler introspection -------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events waiting in the queue."""
        wheel = self._wheel
        return len(wheel) if wheel is not None else len(self._queue)

    @property
    def active_scheduler(self) -> str:
        """Which queue implementation currently backs the loop."""
        return "wheel" if self._wheel is not None else "heap"

    # -- event factories ----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that triggers after ``delay`` seconds."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Wrap a generator into a running simulated :class:`Process`."""
        return Process(self, generator, name=name)

    def spawn_batch(
        self, generators: Iterable[Generator], name: str = ""
    ) -> List[Process]:
        """Spawn a wave of processes on one shared bootstrap event.

        Event-order identical to calling :meth:`process` in a loop at one
        instant: per-process bootstraps would occupy consecutive queue
        slots and dispatch back-to-back, each resuming its process —
        exactly what one shared bootstrap's callback list replays, in the
        same order, before any event the resumed processes themselves
        scheduled (those carry later sequence numbers either way).  What
        the batch saves is the per-process heap/wheel insertion and the
        per-process ``f"{name}:start"`` string build, which at
        100k-process waves is a measurable slice of spawn cost.

        All processes share ``name`` (or fall back to their generator's
        ``__name__``), so per-process name formatting is the caller's
        choice, not an obligation.
        """
        bootstrap = Event(self, name=(name + ":start") if name else "batch:start")
        processes = [
            Process(self, generator, name=name, bootstrap=bootstrap)
            for generator in generators
        ]
        if not processes:
            return processes
        bootstrap._ok = True
        bootstrap._value = None
        self._enqueue_triggered(bootstrap)
        return processes

    def lane_acquire(self) -> Event:
        """Take a recycled *fast-lane* event from the freelist.

        A lane event is a plain :class:`Event` whose owner re-arms it for
        successive delays by resetting ``_value`` to ``PENDING``, installing
        its own callback list, and calling :meth:`_schedule` directly — the
        fused-delay mechanism of the metadata fast path
        (:class:`~repro.daos.client._FastDriver`).  Recycling through the
        simulator-wide freelist means a storm of fast metadata ops allocates
        O(concurrent ops) events instead of three fresh Timeouts per op.

        The caller owns the event until :meth:`lane_release`; lane events
        must never be exposed to other waiters.
        """
        free = self._lane_free
        if free:
            return free.pop()
        return Event(self, name="fastlane")

    def lane_release(self, event: Event) -> None:
        """Return a lane event taken with :meth:`lane_acquire` to the freelist."""
        self._lane_free.append(event)

    def settled(self) -> bool:
        """True when no pending event is scheduled for the current instant.

        This is the guard the metadata fast path uses before eliding a
        resource/lock grant event: when the instant is settled, nothing else
        can observe (or be reordered against) the intermediate grant, so
        continuing inline is indistinguishable from dispatching the grant
        through the queue.  With a foreign event pending at ``now`` the fast
        path falls back to the event-based grant, preserving exact
        ``(time, seq)`` interleaving.
        """
        return self.peek() > self._now

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling (internal API used by events) ---------------------------
    def _schedule(self, delay: float, event: Event) -> None:
        """Enqueue ``event`` to be processed at ``now + delay``."""
        entry = (self._now + delay, next(self._seq), event)
        wheel = self._wheel
        if wheel is not None:
            wheel.push(entry)
            return
        queue = self._queue
        heappush(queue, entry)
        if self._auto and len(queue) >= _WHEEL_ON:
            self._promote()

    def _enqueue_triggered(self, event: Event) -> None:
        """Enqueue an event that was just triggered for immediate processing."""
        entry = (self._now, next(self._seq), event)
        wheel = self._wheel
        if wheel is not None:
            wheel.push(entry)
            return
        queue = self._queue
        heappush(queue, entry)
        if self._auto and len(queue) >= _WHEEL_ON:
            self._promote()

    def _promote(self) -> None:
        """Migrate the pending set from the heap onto the calendar queue.

        ``self._queue`` is emptied *in place* so any caller holding the list
        (the hoisted local in :meth:`_dispatch`) observes it drain rather
        than keeping a stale alias; the dispatch loops re-check
        ``self._wheel`` after every callback for exactly this reason.
        """
        wheel = CalendarQueue()
        for entry in self._queue:
            wheel.push(entry)
        del self._queue[:]
        self._wheel = wheel
        self.scheduler_switches += 1

    def _demote(self) -> None:
        """Migrate the (now small) pending set back onto the heap."""
        queue = self._queue
        queue.extend(self._wheel.drain())
        heapify(queue)
        self._wheel = None
        self.scheduler_switches += 1

    def request_flush(self, callback: Any) -> None:
        """Run ``callback()`` once at the end of the current instant.

        The callback fires after every event scheduled for the current
        simulated time has been processed — i.e. just before time would
        advance (or the queue empties, or a ``run`` deadline is reached).
        Callbacks run in request order and are one-shot; a callback may
        request further flushes, which fold into the same instant if no
        intervening event moved time forward.

        This is how the flow network coalesces an entire instant's worth of
        arrivals and departures into a single rate solve: zero-duration
        intermediate states are unobservable, so batching is free.
        """
        self._flush.append(callback)

    # -- tracing -------------------------------------------------------------
    def record(self, kind: str, **fields: Any) -> None:
        """Emit a trace record if tracing is enabled (no-op otherwise)."""
        if self.tracer is not None:
            self.tracer.record(self._now, kind, fields)

    # -- execution -----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event in the queue.

        Raises ``IndexError`` if the queue is empty.  Attribute access is on
        slots directly (not the public properties): this together with the
        inlined loop in :meth:`run` is the event-dispatch fast path.
        """
        wheel = self._wheel
        if wheel is not None:
            when, _, event = wheel.pop()
        else:
            when, _, event = heappop(self._queue)
        if when < self._now:  # pragma: no cover - internal invariant
            raise AssertionError("event scheduled in the past")
        self._now = when

        if event._value is PENDING:
            # A time-scheduled event (Timeout) firing now: assume its value.
            event._value = event._delayed_value

        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure: surface it rather than dropping it.
            raise event._value

        flush = self._flush
        while flush and self.peek() > self._now:
            callbacks = flush[:]
            del flush[:]
            for callback in callbacks:
                callback()

        wheel = self._wheel
        if wheel is not None and self._auto and len(wheel) <= _WHEEL_OFF:
            self._demote()

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        wheel = self._wheel
        if wheel is not None:
            return wheel.peek()
        return self._queue[0][0] if self._queue else _INF

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is exhausted;
        * a number — run until simulated time reaches that instant;
        * an :class:`Event` — run until the event is processed, returning its
          value (or raising its exception if it failed).
        """
        if self._running:
            raise RuntimeError("simulator is already running (no re-entrant run())")
        self._running = True
        try:
            if until is None:
                self._dispatch()
                return None
            if isinstance(until, Event):
                sentinel = until
                sentinel.add_callback(_raise_stop)
                try:
                    self._dispatch()
                except StopSimulation as stop:
                    event = stop.args[0]
                    if event._ok:
                        return event._value
                    event.defuse()
                    raise event.value
                raise RuntimeError(
                    f"simulation ran out of events before {sentinel!r} triggered"
                )
            # numeric deadline
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"until={deadline} is in the past (now={self._now})"
                )
            self._dispatch(deadline)
            self._now = deadline
            return None
        finally:
            self._running = False

    def _dispatch(self, deadline: Optional[float] = None) -> None:
        """Drain the queue (up to ``deadline``) with step() inlined.

        One bound-method call per event adds up over the tens of millions of
        events a paper-scale run processes; hoisting the loop body (and the
        queue/pop lookups) here is worth ~15% of total dispatch cost.
        Semantics are identical to calling :meth:`step` in a loop.

        The outer loop selects the queue implementation; each inner loop
        runs until the simulation is finished or ``scheduler="auto"``
        migrates the pending set.  The heap loop re-checks ``self._wheel``
        after every batch of callbacks because any callback may push the
        population over ``_WHEEL_ON`` (``_promote`` empties ``self._queue``
        in place, so the hoisted ``queue`` local drains rather than going
        stale).  The wheel loop only demotes at its own pop site, so its
        hoisted locals cannot be invalidated mid-iteration.
        """
        flush = self._flush
        while True:
            wheel = self._wheel
            if wheel is None:
                queue = self._queue
                pop = heappop
                while True:
                    if flush and (not queue or queue[0][0] > self._now):
                        # End of the current instant: run the one-shot flush
                        # callbacks before time advances (or the run ends).
                        callbacks = flush[:]
                        del flush[:]
                        for callback in callbacks:
                            callback()
                        if self._wheel is not None:
                            break  # a flush callback promoted to the wheel
                        continue
                    if not queue:
                        if self._wheel is not None:
                            break  # promoted mid-callback; queue drained
                        return
                    if deadline is not None and queue[0][0] > deadline:
                        return
                    when, _, event = pop(queue)
                    self._now = when

                    if event._value is PENDING:
                        event._value = event._delayed_value

                    callbacks = event.callbacks
                    event.callbacks = None
                    assert callbacks is not None, "event processed twice"
                    for callback in callbacks:
                        callback(event)

                    if not event._ok and not event._defused:
                        raise event._value

                    if self._wheel is not None:
                        break  # an event callback promoted to the wheel
            else:
                wpeek = wheel.peek
                wpop = wheel.pop
                auto = self._auto
                while True:
                    if flush and wpeek() > self._now:
                        callbacks = flush[:]
                        del flush[:]
                        for callback in callbacks:
                            callback()
                        continue
                    if not wheel._size:
                        return
                    if deadline is not None and wpeek() > deadline:
                        return
                    when, _, event = wpop()
                    self._now = when

                    if event._value is PENDING:
                        event._value = event._delayed_value

                    callbacks = event.callbacks
                    event.callbacks = None
                    assert callbacks is not None, "event processed twice"
                    for callback in callbacks:
                        callback(event)

                    if not event._ok and not event._defused:
                        raise event._value

                    if auto and wheel._size <= _WHEEL_OFF:
                        self._demote()
                        break
