"""The simulator event loop.

:class:`Simulator` owns simulated time and a priority queue of triggered
events.  Events are processed in ``(time, sequence)`` order, making runs
fully deterministic: two events triggered for the same instant are processed
in the order they were scheduled.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Generator, Iterable, List, Optional, Tuple

from repro.simulation.events import PENDING, AllOf, AnyOf, Event, Timeout
from repro.simulation.process import Process
from repro.simulation.rng import RngRegistry
from repro.simulation.trace import Tracer, global_tracer

__all__ = ["Simulator", "StopSimulation"]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""


def _raise_stop(event: Event) -> None:
    """Sentinel callback for ``run(until=event)``.

    A module-level function instead of a per-run closure: ``run`` is called
    once per benchmark phase, but the callback travels with the event and a
    fresh closure per call is allocation the hot path does not need.
    """
    raise StopSimulation(event)


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the simulator's :class:`RngRegistry`.  Every source
        of randomness in a model should draw from ``sim.rng`` streams so a
        run is reproducible from this single value.
    trace:
        When True, a :class:`Tracer` collects structured records that models
        emit via :meth:`record`.
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self._now: float = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = count()
        self._flush: List[Any] = []
        self._running = False
        self.rng = RngRegistry(seed)
        # trace=True gets a private tracer; otherwise fall back to the
        # process-wide tracer when one is installed (see ``--trace-out``).
        self.tracer: Optional[Tracer] = Tracer() if trace else global_tracer()

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that triggers after ``delay`` seconds."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Wrap a generator into a running simulated :class:`Process`."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling (internal API used by events) ---------------------------
    def _schedule(self, delay: float, event: Event) -> None:
        """Enqueue ``event`` to be processed at ``now + delay``."""
        heappush(self._queue, (self._now + delay, next(self._seq), event))

    def _enqueue_triggered(self, event: Event) -> None:
        """Enqueue an event that was just triggered for immediate processing."""
        heappush(self._queue, (self._now, next(self._seq), event))

    def request_flush(self, callback: Any) -> None:
        """Run ``callback()`` once at the end of the current instant.

        The callback fires after every event scheduled for the current
        simulated time has been processed — i.e. just before time would
        advance (or the queue empties, or a ``run`` deadline is reached).
        Callbacks run in request order and are one-shot; a callback may
        request further flushes, which fold into the same instant if no
        intervening event moved time forward.

        This is how the flow network coalesces an entire instant's worth of
        arrivals and departures into a single rate solve: zero-duration
        intermediate states are unobservable, so batching is free.
        """
        self._flush.append(callback)

    # -- tracing -------------------------------------------------------------
    def record(self, kind: str, **fields: Any) -> None:
        """Emit a trace record if tracing is enabled (no-op otherwise)."""
        if self.tracer is not None:
            self.tracer.record(self._now, kind, fields)

    # -- execution -----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event in the queue.

        Raises ``IndexError`` if the queue is empty.  Attribute access is on
        slots directly (not the public properties): this together with the
        inlined loop in :meth:`run` is the event-dispatch fast path.
        """
        when, _, event = heappop(self._queue)
        if when < self._now:  # pragma: no cover - internal invariant
            raise AssertionError("event scheduled in the past")
        self._now = when

        if event._value is PENDING:
            # A time-scheduled event (Timeout) firing now: assume its value.
            event._value = event._delayed_value

        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure: surface it rather than dropping it.
            raise event._value

        flush = self._flush
        while flush and (not self._queue or self._queue[0][0] > self._now):
            callbacks = flush[:]
            del flush[:]
            for callback in callbacks:
                callback()

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is exhausted;
        * a number — run until simulated time reaches that instant;
        * an :class:`Event` — run until the event is processed, returning its
          value (or raising its exception if it failed).
        """
        if self._running:
            raise RuntimeError("simulator is already running (no re-entrant run())")
        self._running = True
        try:
            if until is None:
                self._dispatch()
                return None
            if isinstance(until, Event):
                sentinel = until
                sentinel.add_callback(_raise_stop)
                try:
                    self._dispatch()
                except StopSimulation as stop:
                    event = stop.args[0]
                    if event._ok:
                        return event._value
                    event.defuse()
                    raise event.value
                raise RuntimeError(
                    f"simulation ran out of events before {sentinel!r} triggered"
                )
            # numeric deadline
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"until={deadline} is in the past (now={self._now})"
                )
            self._dispatch(deadline)
            self._now = deadline
            return None
        finally:
            self._running = False

    def _dispatch(self, deadline: Optional[float] = None) -> None:
        """Drain the queue (up to ``deadline``) with step() inlined.

        One bound-method call per event adds up over the tens of millions of
        events a paper-scale run processes; hoisting the loop body (and the
        queue/heappop lookups) here is worth ~15% of total dispatch cost.
        Semantics are identical to calling :meth:`step` in a loop.
        """
        queue = self._queue
        flush = self._flush
        pop = heappop
        while True:
            if flush and (not queue or queue[0][0] > self._now):
                # End of the current instant: run the one-shot flush
                # callbacks before time advances (or the run ends).
                callbacks = flush[:]
                del flush[:]
                for callback in callbacks:
                    callback()
                continue
            if not queue:
                return
            if deadline is not None and queue[0][0] > deadline:
                return
            when, _, event = pop(queue)
            self._now = when

            if event._value is PENDING:
                event._value = event._delayed_value

            callbacks = event.callbacks
            event.callbacks = None
            assert callbacks is not None, "event processed twice"
            for callback in callbacks:
                callback(event)

            if not event._ok and not event._defused:
                raise event._value
