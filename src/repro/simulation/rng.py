"""Named, seeded random-number streams.

Every stochastic decision in the models draws from a *named stream* so that
adding a new source of randomness does not perturb existing ones — the
classic trick for reproducible simulation experiments.  Streams are derived
from the master seed and the stream name via ``numpy``'s ``SeedSequence``
spawning, which gives independent, well-distributed child states.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same ``(seed, name)`` pair always yields an identical stream,
        regardless of creation order of other streams.
        """
        generator = self._streams.get(name)
        if generator is None:
            # Hash the name into entropy deterministically (Python's hash()
            # is salted per-process, so use a stable digest instead).
            import hashlib

            digest = hashlib.sha256(name.encode("utf-8")).digest()
            entropy = int.from_bytes(digest[:8], "little")
            seq = np.random.SeedSequence(entropy=[self.seed, entropy])
            generator = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = generator
        return generator

    def __contains__(self, name: str) -> bool:
        return name in self._streams
