"""Generator-based simulated processes.

A process is an ordinary Python generator that ``yield``\\ s
:class:`~repro.simulation.events.Event` objects.  Each yield suspends the
process until the event triggers; the event's value is sent back into the
generator (or its exception raised there).  A :class:`Process` is itself an
Event that triggers when the generator returns, so processes can wait on
each other and be composed with ``AllOf``/``AnyOf``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.simulation.events import PENDING, Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.core import Simulator

__all__ = ["Process"]


class Process(Event):
    """A running simulated process wrapping a generator.

    The process starts on the next simulator step after creation.  When the
    generator returns, the process event succeeds with the return value; if
    the generator raises, the process event fails with that exception.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator,
        name: str = "",
        bootstrap: Optional[Event] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", ""))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        if bootstrap is not None:
            # Batch spawn (see Simulator.spawn_batch): ride a shared
            # bootstrap event the caller enqueues once for the whole wave.
            bootstrap.callbacks.append(self._resume)
            return
        # Kick off the process via an immediately-triggered bootstrap event.
        bootstrap = Event(sim, name=f"{self.name}:start")
        bootstrap.callbacks.append(self._resume)
        bootstrap._ok = True
        bootstrap._value = None
        sim._enqueue_triggered(bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is an error.  The event the process
        was waiting on remains pending/triggered; the process simply stops
        waiting for it.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self!r}")
        target = self._waiting_on
        if target is not None and not target.processed:
            # Detach: the event may still trigger later; ignore it then.
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
        self._waiting_on = None
        # Deliver the interrupt via an immediate event so ordering stays
        # consistent with normal resumptions.
        kicker = Event(self.sim, name=f"{self.name}:interrupt")
        kicker.callbacks.append(
            lambda _evt: self._step(Interrupt(cause), as_exception=True)
        )
        kicker._ok = True
        kicker._value = None
        self.sim._enqueue_triggered(kicker)

    # -- internal stepping ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        # Slot access throughout: _resume fires once per yield of every
        # process, i.e. once per simulated I/O step.
        if self._value is not PENDING:
            # Process already ended (e.g. interrupted); swallow stale wakeups.
            if not event._ok:
                event.defuse()
            return
        self._waiting_on = None
        if event._ok:
            self._step(event._value, as_exception=False)
        else:
            event.defuse()
            self._step(event.value, as_exception=True)

    def _step(self, payload: Any, *, as_exception: bool) -> None:
        try:
            if as_exception:
                target = self._generator.throw(payload)
            else:
                target = self._generator.send(payload)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return

        if not isinstance(target, Event):
            exc = TypeError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
            self._generator.close()
            self.fail(exc)
            return
        if target.sim is not self.sim:
            self._generator.close()
            self.fail(ValueError("yielded event belongs to a different simulator"))
            return
        self._waiting_on = target
        callbacks = target.callbacks
        if callbacks is None:
            # Already processed: resume immediately (add_callback inlined).
            self._resume(target)
        else:
            callbacks.append(self._resume)
