"""Structured simulation tracing.

Models call ``sim.record(kind, **fields)``; when tracing is enabled the
records accumulate here and can be filtered or dumped.  The benchmark layer
uses its own dedicated timestamp tables (``repro.bench.timestamps``) for the
hot path — this tracer is for debugging and for tests that assert on event
ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace record: a timestamp, a kind tag, and free-form fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer:
    """Append-only list of :class:`TraceRecord` with simple querying."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def record(self, time: float, kind: str, fields: Dict[str, Any]) -> None:
        self.records.append(TraceRecord(time, kind, dict(fields)))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(self, kind: Optional[str] = None, **fields: Any) -> List[TraceRecord]:
        """Records matching ``kind`` (if given) and all given field values."""
        out = []
        for rec in self.records:
            if kind is not None and rec.kind != kind:
                continue
            if all(rec.fields.get(k) == v for k, v in fields.items()):
                out.append(rec)
        return out

    def kinds(self) -> List[str]:
        """Distinct record kinds in first-seen order."""
        seen: List[str] = []
        for rec in self.records:
            if rec.kind not in seen:
                seen.append(rec.kind)
        return seen
