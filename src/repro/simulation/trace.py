"""Structured simulation tracing.

Models call ``sim.record(kind, **fields)``; when tracing is enabled the
records accumulate here and can be filtered or dumped.  The benchmark layer
uses its own dedicated timestamp tables (``repro.bench.timestamps``) for the
hot path — this tracer is for debugging and for tests that assert on event
ordering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "TraceRecord",
    "Tracer",
    "global_tracer",
    "install_global_tracer",
    "uninstall_global_tracer",
]


@dataclass(frozen=True)
class TraceRecord:
    """One trace record: a timestamp, a kind tag, and free-form fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer:
    """Append-only list of :class:`TraceRecord` with simple querying."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def record(self, time: float, kind: str, fields: Dict[str, Any]) -> None:
        self.records.append(TraceRecord(time, kind, dict(fields)))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(self, kind: Optional[str] = None, **fields: Any) -> List[TraceRecord]:
        """Records matching ``kind`` (if given) and all given field values."""
        out = []
        for rec in self.records:
            if kind is not None and rec.kind != kind:
                continue
            if all(rec.fields.get(k) == v for k, v in fields.items()):
                out.append(rec)
        return out

    def kinds(self) -> List[str]:
        """Distinct record kinds in first-seen order."""
        seen: List[str] = []
        for rec in self.records:
            if rec.kind not in seen:
                seen.append(rec.kind)
        return seen

    def dump_jsonl(self, path: str) -> int:
        """Write all records to ``path`` as JSON lines; returns the count.

        Each line is ``{"time": ..., "kind": ..., **fields}``.  Field values
        that are not JSON-native (e.g. object ids) are stringified rather
        than rejected, so arbitrary model records always serialise.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for rec in self.records:
                row = {"time": rec.time, "kind": rec.kind}
                row.update(rec.fields)
                fh.write(json.dumps(row, default=str))
                fh.write("\n")
        return len(self.records)


#: Process-wide tracer used by simulators created with ``trace=False`` while
#: a global tracer is installed (the ``--trace-out`` CLI path: experiments
#: build their Clusters internally and never pass ``trace=True``).
_GLOBAL_TRACER: Optional[Tracer] = None


def global_tracer() -> Optional[Tracer]:
    """The currently installed process-wide tracer, or ``None``."""
    return _GLOBAL_TRACER


def install_global_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) a process-wide tracer picked up by new Simulators."""
    global _GLOBAL_TRACER
    if tracer is None:
        tracer = Tracer()
    _GLOBAL_TRACER = tracer
    return tracer


def uninstall_global_tracer() -> None:
    """Remove the process-wide tracer; new Simulators stop tracing."""
    global _GLOBAL_TRACER
    _GLOBAL_TRACER = None
